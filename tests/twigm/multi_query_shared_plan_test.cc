// Shared-plan compilation (DESIGN.md §7): subscriptions whose queries share
// a structural skeleton run ONE TwigMachine with per-group parameter
// evaluation. These tests pin the two load-bearing properties:
//
//   * correctness — per-subscriber results are byte-identical to a private
//     single-query engine, whatever mix of literals shares a machine;
//   * scaling — the acceptance criterion of the plan-cache refactor: with
//     1024 subscriptions drawn from 16 skeletons, per-event machine visits
//     stay within 2x of a 16-distinct-query engine and at least 10x below
//     the per-subscription fan-out that share_plans=false pays.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "twigm/engine.h"
#include "twigm/multi_query.h"

namespace vitex::twigm {
namespace {

uint64_t TotalVisits(const DispatchStats& ds) {
  return ds.start_visits + ds.end_visits + ds.text_visits;
}

uint64_t TotalEvents(const DispatchStats& ds) {
  return ds.start_events + ds.end_events + ds.text_nodes;
}

TEST(SharedPlanTest, LiteralVariantsShareOneMachine) {
  MultiQueryEngine engine;
  VectorResultCollector acme, ibm, none;
  ASSERT_TRUE(engine.AddQuery("//quote[@symbol = 'ACME']/price", &acme).ok());
  ASSERT_TRUE(engine.AddQuery("//quote[@symbol = 'IBM']/price", &ibm).ok());
  ASSERT_TRUE(engine.AddQuery("//quote[@symbol = 'ZZZ']/price", &none).ok());
  EXPECT_EQ(engine.query_count(), 3u);
  EXPECT_EQ(engine.machine_count(), 1u);

  ASSERT_TRUE(engine
                  .RunString("<feed>"
                             "<quote symbol=\"ACME\"><price>12</price></quote>"
                             "<quote symbol=\"IBM\"><price>90</price></quote>"
                             "<quote symbol=\"ACME\"><price>13</price></quote>"
                             "</feed>")
                  .ok());
  EXPECT_EQ(acme.SortedFragments(),
            (std::vector<std::string>{"<price>12</price>",
                                      "<price>13</price>"}));
  EXPECT_EQ(ibm.SortedFragments(),
            (std::vector<std::string>{"<price>90</price>"}));
  EXPECT_EQ(none.size(), 0u);
  EXPECT_EQ(engine.dispatch_stats().plans, 1u);
  EXPECT_EQ(engine.dispatch_stats().subscriptions, 3u);
}

TEST(SharedPlanTest, IdenticalQueriesShareOneGroup) {
  MultiQueryEngine engine;
  VectorResultCollector r1, r2;
  ASSERT_TRUE(engine.AddQuery("//a[b = '1']", &r1).ok());
  ASSERT_TRUE(engine.AddQuery("//a[b = '1']", &r2).ok());
  EXPECT_EQ(engine.machine_count(), 1u);
  ASSERT_TRUE(engine.RunString("<r><a><b>1</b></a><a><b>2</b></a></r>").ok());
  EXPECT_EQ(r1.SortedFragments(), r2.SortedFragments());
  ASSERT_EQ(r1.size(), 1u);
}

TEST(SharedPlanTest, DistinctStructureGetsDistinctPlans) {
  MultiQueryEngine engine;
  // Same tags, different axis / formula / operator / output: all distinct
  // skeletons.
  ASSERT_TRUE(engine.AddQuery("//a[b = '1']", nullptr).ok());
  ASSERT_TRUE(engine.AddQuery("/a[b = '1']", nullptr).ok());
  ASSERT_TRUE(engine.AddQuery("//a[b != '1']", nullptr).ok());
  ASSERT_TRUE(engine.AddQuery("//a[b = '1']/c", nullptr).ok());
  EXPECT_EQ(engine.machine_count(), 4u);
}

TEST(SharedPlanTest, DifferentMemoryLimitsDoNotShare) {
  MultiQueryEngine engine;
  TwigMachine::Options tight;
  tight.memory_limit_bytes = 1 << 20;
  ASSERT_TRUE(engine.AddQuery("//a[b = '1']", nullptr).ok());
  ASSERT_TRUE(engine.AddQuery("//a[b = '2']", nullptr, tight).ok());
  EXPECT_EQ(engine.machine_count(), 2u);
}

TEST(SharedPlanTest, NumericAndStringLiteralSpellingsAreDistinctGroups) {
  // [a = 10] (numeric token) and [a = '10'] (string literal) compare
  // differently against non-numeric node text; they must not collapse into
  // one group even though the spelling matches.
  MultiQueryEngine engine;
  VectorResultCollector numeric, stringly;
  ASSERT_TRUE(engine.AddQuery("//r[a = 10]", &numeric).ok());
  ASSERT_TRUE(engine.AddQuery("//r[a = '10']", &stringly).ok());
  EXPECT_EQ(engine.machine_count(), 1u);
  // " 10 " equals 10 numerically but not '10' as a string.
  ASSERT_TRUE(engine.RunString("<r><a> 10 </a></r>").ok());
  EXPECT_EQ(numeric.size(), 1u);
  EXPECT_EQ(stringly.size(), 0u);
}

TEST(SharedPlanTest, MatchesPrivateEnginesAcrossGroupMixes) {
  // A skeleton whose predicate mixes =, relational and not() over the
  // shared machine; every subscriber must match its own private engine.
  const std::string doc =
      "<log>"
      "<entry level=\"3\"><msg>alpha</msg></entry>"
      "<entry level=\"7\"><msg>beta</msg></entry>"
      "<entry level=\"10\"><msg>gamma</msg></entry>"
      "<entry><msg>delta</msg></entry>"
      "</log>";
  std::vector<std::string> queries;
  for (const char* lit : {"3", "7", "10", "99"}) {
    queries.push_back("//entry[@level = '" + std::string(lit) + "']/msg");
    queries.push_back("//entry[@level > " + std::string(lit) + "]/msg");
    queries.push_back("//entry[not(@level = '" + std::string(lit) +
                      "')]/msg");
  }
  MultiQueryEngine shared;
  std::vector<std::unique_ptr<VectorResultCollector>> results;
  for (const std::string& q : queries) {
    results.push_back(std::make_unique<VectorResultCollector>());
    ASSERT_TRUE(shared.AddQuery(q, results.back().get()).ok()) << q;
  }
  // 3 skeletons, 4 literals each.
  EXPECT_EQ(shared.machine_count(), 3u);
  ASSERT_TRUE(shared.RunString(doc).ok());
  for (size_t i = 0; i < queries.size(); ++i) {
    VectorResultCollector single;
    auto engine = Engine::Create(queries[i], &single);
    ASSERT_TRUE(engine.ok());
    ASSERT_TRUE(engine->RunString(doc).ok());
    EXPECT_EQ(results[i]->SortedFragments(), single.SortedFragments())
        << queries[i];
  }
}

// --- The acceptance criterion -------------------------------------------

std::string SkeletonQuery(int skeleton, int literal) {
  return "//a" + std::to_string(skeleton) + "[x" + std::to_string(skeleton) +
         " = 'v" + std::to_string(literal) + "']/y" +
         std::to_string(skeleton);
}

std::string SkeletonDocument(int skeletons, int entries_per_skeleton) {
  std::string doc = "<feed>";
  for (int k = 0; k < skeletons; ++k) {
    std::string sk = std::to_string(k);
    for (int e = 0; e < entries_per_skeleton; ++e) {
      std::string lit = "v" + std::to_string(e * 7 % 64);
      doc += "<a" + sk + "><x" + sk + ">" + lit + "</x" + sk + "><y" + sk +
             ">r" + std::to_string(e) + "</y" + sk + "></a" + sk + ">";
    }
  }
  doc += "</feed>";
  return doc;
}

TEST(SharedPlanTest, AcceptanceVisitsFlatAt1024SubscriptionsOver16Skeletons) {
  constexpr int kSkeletons = 16;
  constexpr int kLiteralsPerSkeleton = 64;  // 1024 subscriptions total
  const std::string doc = SkeletonDocument(kSkeletons, /*entries=*/8);

  // Reference: one subscription per skeleton (16 distinct queries).
  MultiQueryEngine reference;
  for (int k = 0; k < kSkeletons; ++k) {
    ASSERT_TRUE(reference.AddQuery(SkeletonQuery(k, 0), nullptr).ok());
  }
  ASSERT_TRUE(reference.RunString(doc).ok());
  uint64_t reference_visits = TotalVisits(reference.dispatch_stats());
  ASSERT_GT(reference_visits, 0u);

  // Shared plans: 1024 subscriptions, 16 skeletons x 64 literals.
  MultiQueryEngine shared;
  std::vector<std::unique_ptr<CountingResultHandler>> handlers;
  for (int k = 0; k < kSkeletons; ++k) {
    for (int j = 0; j < kLiteralsPerSkeleton; ++j) {
      handlers.push_back(std::make_unique<CountingResultHandler>());
      ASSERT_TRUE(
          shared.AddQuery(SkeletonQuery(k, j), handlers.back().get()).ok());
    }
  }
  EXPECT_EQ(shared.query_count(), 1024u);
  EXPECT_EQ(shared.machine_count(), 16u);
  ASSERT_TRUE(shared.RunString(doc).ok());
  const DispatchStats& ds = shared.dispatch_stats();
  EXPECT_EQ(ds.subscriptions, 1024u);
  EXPECT_EQ(ds.machines, 16u);
  EXPECT_EQ(ds.plans, 16u);
  uint64_t shared_visits = TotalVisits(ds);
  EXPECT_EQ(TotalEvents(ds), TotalEvents(reference.dispatch_stats()));

  // Within 2x of the 16-distinct-query engine (same skeleton set, so in
  // fact identical dispatch — the slack guards unrelated index changes).
  EXPECT_LE(shared_visits, 2 * reference_visits);

  // And >= 10x below per-subscription fan-out.
  MultiQueryEngine::Options legacy;
  legacy.share_plans = false;
  MultiQueryEngine unshared{xml::SaxParserOptions(), legacy};
  for (int k = 0; k < kSkeletons; ++k) {
    for (int j = 0; j < kLiteralsPerSkeleton; ++j) {
      ASSERT_TRUE(unshared.AddQuery(SkeletonQuery(k, j), nullptr).ok());
    }
  }
  EXPECT_EQ(unshared.machine_count(), 1024u);
  ASSERT_TRUE(unshared.RunString(doc).ok());
  uint64_t unshared_visits = TotalVisits(unshared.dispatch_stats());
  EXPECT_GE(unshared_visits, 10 * shared_visits);

  // Spot-check delivery: subscriber (k, j) sees exactly the entries whose
  // x-literal is v_j (entries use j = e*7 mod 64 over 8 entries).
  for (int k = 0; k < kSkeletons; ++k) {
    for (int e = 0; e < 8; ++e) {
      int j = e * 7 % 64;
      EXPECT_GE(handlers[static_cast<size_t>(k * 64 + j)]->count(), 1u);
    }
    EXPECT_EQ(handlers[static_cast<size_t>(k * 64 + 1)]->count(), 0u);
  }
}

TEST(SharedPlanTest, ParameterComparisonsSeeDecodedAttributeValues) {
  // The per-group comparators compare against the *decoded* attribute
  // value, independent of chunk seams: "A&amp;B" in the document matches
  // the subscriber whose literal is "A&B", under byte-at-a-time feeding.
  MultiQueryEngine engine;
  VectorResultCollector amp, plain;
  ASSERT_TRUE(engine.AddQuery("//q[@s = 'A&B']/p", &amp).ok());
  ASSERT_TRUE(engine.AddQuery("//q[@s = 'AB']/p", &plain).ok());
  EXPECT_EQ(engine.machine_count(), 1u);
  const std::string doc = R"(<r><q s="A&amp;B"><p>yes</p></q></r>)";
  for (char c : doc) {
    ASSERT_TRUE(engine.Feed(std::string_view(&c, 1)).ok());
  }
  ASSERT_TRUE(engine.Finish().ok());
  EXPECT_EQ(amp.SortedFragments(), (std::vector<std::string>{"<p>yes</p>"}));
  EXPECT_EQ(plain.size(), 0u);
}

TEST(SharedPlanTest, SixtyFifthGroupChainsANewInstance) {
  MultiQueryEngine engine;
  for (int j = 0; j < 65; ++j) {
    ASSERT_TRUE(
        engine.AddQuery("//a[b = 'v" + std::to_string(j) + "']", nullptr)
            .ok());
  }
  EXPECT_EQ(engine.query_count(), 65u);
  EXPECT_EQ(engine.machine_count(), 2u);  // 64 groups + 1 overflow instance
  // Still one logical plan.
  ASSERT_TRUE(engine.RunString("<r><a><b>v64</b></a></r>").ok());
  EXPECT_EQ(engine.dispatch_stats().plans, 1u);
  EXPECT_EQ(engine.dispatch_stats().machines, 2u);
}

}  // namespace
}  // namespace vitex::twigm
