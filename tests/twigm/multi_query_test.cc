#include "twigm/multi_query.h"

#include <gtest/gtest.h>

#include "twigm/engine.h"
#include "workload/protein_generator.h"

namespace vitex::twigm {
namespace {

TEST(MultiQueryTest, TwoQueriesOneStream) {
  MultiQueryEngine engine;
  VectorResultCollector r1, r2;
  auto q1 = engine.AddQuery("//a", &r1);
  auto q2 = engine.AddQuery("//b/@id", &r2);
  ASSERT_TRUE(q1.ok());
  ASSERT_TRUE(q2.ok());
  ASSERT_TRUE(engine.RunString("<r><a/><b id=\"x\"/><a/></r>").ok());
  EXPECT_EQ(r1.size(), 2u);
  ASSERT_EQ(r2.size(), 1u);
  EXPECT_EQ(r2.results()[0].fragment, "x");
}

TEST(MultiQueryTest, MatchesSingleQueryEngines) {
  workload::ProteinOptions options;
  options.entries = 50;
  auto doc = workload::GenerateProteinString(options);
  ASSERT_TRUE(doc.ok());
  const char* queries[] = {
      "//ProteinEntry[reference]/@id",
      "//refinfo/@refid",
      "//ProteinEntry[summary/length > 300]//gene",
  };
  MultiQueryEngine multi;
  std::vector<std::unique_ptr<VectorResultCollector>> multi_results;
  for (const char* q : queries) {
    multi_results.push_back(std::make_unique<VectorResultCollector>());
    ASSERT_TRUE(multi.AddQuery(q, multi_results.back().get()).ok());
  }
  ASSERT_TRUE(multi.RunString(doc.value()).ok());

  for (size_t i = 0; i < 3; ++i) {
    VectorResultCollector single;
    auto engine = Engine::Create(queries[i], &single);
    ASSERT_TRUE(engine.ok());
    ASSERT_TRUE(engine->RunString(doc.value()).ok());
    EXPECT_EQ(multi_results[i]->SortedFragments(), single.SortedFragments())
        << queries[i];
  }
}

TEST(MultiQueryTest, RegistrationAfterStartRejected) {
  MultiQueryEngine engine;
  ASSERT_TRUE(engine.AddQuery("//a", nullptr).ok());
  ASSERT_TRUE(engine.Feed("<r>").ok());
  EXPECT_TRUE(engine.AddQuery("//b", nullptr).status().IsInvalidArgument());
}

TEST(MultiQueryTest, BadQueryRejectedOthersUnaffected) {
  MultiQueryEngine engine;
  ASSERT_TRUE(engine.AddQuery("//a", nullptr).ok());
  EXPECT_FALSE(engine.AddQuery("][bad", nullptr).ok());
  EXPECT_EQ(engine.query_count(), 1u);
  EXPECT_TRUE(engine.RunString("<a/>").ok());
}

TEST(MultiQueryTest, PerQueryStatsIndependent) {
  MultiQueryEngine engine;
  VectorResultCollector r1, r2;
  ASSERT_TRUE(engine.AddQuery("//a", &r1).ok());
  ASSERT_TRUE(engine.AddQuery("//zzz", &r2).ok());
  ASSERT_TRUE(engine.RunString("<r><a/><a/></r>").ok());
  EXPECT_EQ(engine.machine(0).stats().results_emitted, 2u);
  EXPECT_EQ(engine.machine(1).stats().results_emitted, 0u);
}

TEST(MultiQueryTest, ResetStreamKeepsQueries) {
  MultiQueryEngine engine;
  VectorResultCollector results;
  ASSERT_TRUE(engine.AddQuery("//a", &results).ok());
  ASSERT_TRUE(engine.RunString("<a/>").ok());
  engine.ResetStream();
  ASSERT_TRUE(engine.RunString("<r><a/><a/></r>").ok());
  EXPECT_EQ(results.size(), 3u);
}

TEST(MultiQueryTest, ChunkedFeedAcrossManyQueries) {
  MultiQueryEngine engine;
  VectorResultCollector results[4];
  ASSERT_TRUE(engine.AddQuery("//a[b]", &results[0]).ok());
  ASSERT_TRUE(engine.AddQuery("//a[not(b)]", &results[1]).ok());
  ASSERT_TRUE(engine.AddQuery("//b/text()", &results[2]).ok());
  ASSERT_TRUE(engine.AddQuery("//a//@k", &results[3]).ok());
  const std::string doc = "<r><a k=\"1\"><b>t</b></a><a/><a><c/></a></r>";
  for (char c : doc) {
    ASSERT_TRUE(engine.Feed(std::string_view(&c, 1)).ok());
  }
  ASSERT_TRUE(engine.Finish().ok());
  EXPECT_EQ(results[0].size(), 1u);  // a with b
  EXPECT_EQ(results[1].size(), 2u);  // a's without b
  EXPECT_EQ(results[2].size(), 1u);  // "t"
  EXPECT_EQ(results[3].size(), 1u);  // k attribute
}

TEST(MultiQueryTest, TotalLiveBytesAggregates) {
  MultiQueryEngine engine;
  ASSERT_TRUE(engine.AddQuery("//a[zzz]//b", nullptr).ok());
  ASSERT_TRUE(engine.AddQuery("//a[zzz]//c", nullptr).ok());
  ASSERT_TRUE(engine.Feed("<r><a><b/><c/>").ok());
  // Both machines hold buffered candidates -> nonzero aggregate.
  EXPECT_GT(engine.total_live_bytes(), 0u);
  ASSERT_TRUE(engine.Feed("</a></r>").ok());
  ASSERT_TRUE(engine.Finish().ok());
  EXPECT_EQ(engine.total_live_bytes(), 0u);
}

}  // namespace
}  // namespace vitex::twigm
