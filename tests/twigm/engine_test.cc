#include "twigm/engine.h"

#include <gtest/gtest.h>

#include <cstdio>

#include "twigm/builder.h"
#include "workload/protein_generator.h"

namespace vitex::twigm {
namespace {

TEST(EngineTest, CallerSuppliedSymbolTableIsHonored) {
  // Engine::Create must build the machine against a table the caller put in
  // options.sax.symbols (not silently swap in a private one), so tables can
  // be shared across pipelines.
  SymbolTable shared;
  Engine::Options options;
  options.sax.symbols = &shared;
  VectorResultCollector results;
  auto engine = Engine::Create("//widget", &results, options);
  ASSERT_TRUE(engine.ok());
  EXPECT_EQ(&engine->machine().symbols(), &shared);
  EXPECT_NE(shared.Lookup("widget"), kNoSymbol);
  ASSERT_TRUE(engine->RunString("<r><widget/></r>").ok());
  EXPECT_EQ(results.size(), 1u);
}

TEST(EngineTest, CreateRejectsBadQueries) {
  EXPECT_FALSE(Engine::Create("not-an-xpath", nullptr).ok());
  EXPECT_FALSE(Engine::Create("", nullptr).ok());
  EXPECT_FALSE(Engine::Create("//a[", nullptr).ok());
}

TEST(EngineTest, QueryAccessorExposesCompiledTwig) {
  auto engine = Engine::Create("//a[b]//c", nullptr);
  ASSERT_TRUE(engine.ok());
  EXPECT_EQ(engine->query().size(), 3u);
  EXPECT_EQ(engine->query().source(), "//a[b]//c");
}

TEST(EngineTest, MalformedXmlSurfacesParseError) {
  auto engine = Engine::Create("//a", nullptr);
  ASSERT_TRUE(engine.ok());
  Status s = engine->RunString("<a><b></a>");
  EXPECT_TRUE(s.IsParseError());
}

TEST(EngineTest, IncrementalResultsBeforeStreamEnd) {
  // Results must flow out as soon as qualification is proven, not at
  // document end (paper requirement 2).
  VectorResultCollector results;
  auto engine = Engine::Create("//item", &results);
  ASSERT_TRUE(engine.ok());
  ASSERT_TRUE(engine->Feed("<feed><item>1</item>").ok());
  EXPECT_EQ(results.size(), 1u);  // emitted before the stream ends
  ASSERT_TRUE(engine->Feed("<item>2</item></feed>").ok());
  ASSERT_TRUE(engine->Finish().ok());
  EXPECT_EQ(results.size(), 2u);
}

TEST(EngineTest, RunFileMatchesRunString) {
  workload::ProteinOptions options;
  options.entries = 20;
  auto doc = workload::GenerateProteinString(options);
  ASSERT_TRUE(doc.ok());

  std::string path = ::testing::TempDir() + "/vitex_engine_test.xml";
  {
    std::FILE* f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    std::fwrite(doc->data(), 1, doc->size(), f);
    std::fclose(f);
  }

  const char* query = "//ProteinEntry[reference]/@id";
  VectorResultCollector from_string;
  auto e1 = Engine::Create(query, &from_string);
  ASSERT_TRUE(e1.ok());
  ASSERT_TRUE(e1->RunString(doc.value()).ok());

  VectorResultCollector from_file;
  auto e2 = Engine::Create(query, &from_file);
  ASSERT_TRUE(e2.ok());
  ASSERT_TRUE(e2->RunFile(path, /*chunk_bytes=*/512).ok());

  EXPECT_EQ(from_string.SortedFragments(), from_file.SortedFragments());
  EXPECT_GT(from_string.size(), 0u);
  std::remove(path.c_str());
}

TEST(EngineTest, RunFileMissingFileFails) {
  auto engine = Engine::Create("//a", nullptr);
  ASSERT_TRUE(engine.ok());
  EXPECT_TRUE(engine->RunFile("/no/such/file.xml").IsIoError());
}

TEST(EngineTest, MoveSemantics) {
  VectorResultCollector results;
  auto engine = Engine::Create("//a", &results);
  ASSERT_TRUE(engine.ok());
  Engine moved = std::move(engine).value();
  ASSERT_TRUE(moved.RunString("<a/>").ok());
  EXPECT_EQ(results.size(), 1u);
}

TEST(BuilderTest, BuildFromPrecompiledQuery) {
  auto compiled = xpath::ParseAndCompile("//a[b]");
  ASSERT_TRUE(compiled.ok());
  auto query = std::make_unique<xpath::Query>(std::move(compiled).value());
  VectorResultCollector results;
  auto built = TwigMBuilder::Build(std::move(query), &results);
  ASSERT_TRUE(built.ok()) << built.status();
  EXPECT_EQ(built->query().size(), 2u);
}

TEST(BuilderTest, NullQueryRejected) {
  auto built =
      TwigMBuilder::Build(std::unique_ptr<xpath::Query>(), nullptr);
  EXPECT_TRUE(built.status().IsInvalidArgument());
}

TEST(BuilderTest, MachineNodeCountEqualsQuerySize) {
  // Paper §3.1: one machine node per query node, built in linear time.
  for (const char* q : {"//a", "//a[b]", "//a[b][c]//d[e/f]//g"}) {
    VectorResultCollector results;
    auto built = TwigMBuilder::Build(q, &results);
    ASSERT_TRUE(built.ok());
    EXPECT_GT(built->query().size(), 0u);
    // DebugString lists one "node N" line per machine node.
    std::string dump = built->machine().DebugString();
    size_t lines = std::count(dump.begin(), dump.end(), '\n');
    EXPECT_EQ(lines, built->query().size()) << q;
  }
}

TEST(ResultCollectorTest, SortedFragmentsOrdersBySequence) {
  VectorResultCollector c;
  c.OnResult("third", 30);
  c.OnResult("first", 10);
  c.OnResult("second", 20);
  std::vector<std::string> expected = {"first", "second", "third"};
  EXPECT_EQ(c.SortedFragments(), expected);
}

TEST(ResultCollectorTest, CountingHandlerCounts) {
  CountingResultHandler h;
  h.OnResult("abc", 1);
  h.OnResult("de", 2);
  EXPECT_EQ(h.count(), 2u);
  EXPECT_EQ(h.bytes(), 5u);
  h.Reset();
  EXPECT_EQ(h.count(), 0u);
}

}  // namespace
}  // namespace vitex::twigm
