// The randomized differential sweep — the acceptance bar for this harness:
// thousands of seeded (query, document) cross-checks through all five
// routes (DomEvaluator ground truth, single TwigMachine, MultiQueryEngine
// with per-query machines and co-registered decoys, StreamService replay
// across 1..4 shards, and the shared-plan MultiQueryEngine with hash-consed
// skeletons) over the four workload generators plus the markup-rich random
// generator, with zero divergences. Failures print a minimized,
// self-contained repro (Divergence::ToString) and are deterministic per
// seed.
//
// Totals: 10 seeds × 4 paper workloads × 125 checks = 5000 checks through
// all five routes, plus another 5000 in SharedSkeletonBatch mode (batches
// instantiated from one query template, so the shared-plan route folds them
// into one or a few plan machines), plus the random-generator and
// chunked-feed sweeps on top. For longer runs use tools/difftest_main.cc.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/random.h"
#include "difftest/oracle.h"
#include "difftest/query_fuzzer.h"
#include "difftest/workload_corpus.h"
#include "workload/recursive_generator.h"

namespace vitex::difftest {
namespace {

// Runs `batches` batches of `kBatch` fuzzed queries over fresh documents of
// `kind`; every batch member is cross-checked and doubles as the others'
// decoy.
void SweepWorkload(Oracle* oracle, WorkloadKind kind, uint64_t seed,
                   int batches, int batch_size) {
  Random rng(seed * 0x9e3779b97f4a7c15ull +
             static_cast<uint64_t>(kind) * 0x517cc1b727220a95ull);
  QueryFuzzer fuzzer(WorkloadAlphabet(kind));
  for (int b = 0; b < batches; ++b) {
    std::string doc =
        GenerateWorkloadDocument(kind, seed * 100 + static_cast<uint64_t>(b),
                                 &rng);
    std::vector<std::string> queries;
    for (int q = 0; q < batch_size; ++q) queries.push_back(fuzzer.Next(&rng));
    std::vector<std::string> decoys = {fuzzer.Next(&rng), "//*"};
    // The recursive workload is where candidate stacks explode: always
    // include a deep chain query alongside the fuzzed ones.
    if (kind == WorkloadKind::kRecursive) {
      queries.push_back(workload::RecursiveChainQuery(
          2 + static_cast<int>(rng.Uniform(4))));
    }
    auto d = oracle->CheckBatch(queries, decoys, doc);
    ASSERT_FALSE(d.has_value())
        << "workload " << WorkloadName(kind) << " seed " << seed << " batch "
        << b << "\n"
        << d->ToString();
  }
}

// SharedSkeletonBatch sweep: every batch is a literal/tag-varied family of
// one query template — the subscriber-population shape the plan cache
// exists for. The shared-plan route hash-conses the family; DOM, twigm and
// the per-query multi-query route evaluate each member independently.
void SweepSharedSkeletons(Oracle* oracle, WorkloadKind kind, uint64_t seed,
                          int batches, int batch_size) {
  Random rng(seed * 0xd1b54a32d192ed03ull +
             static_cast<uint64_t>(kind) * 0x9e3779b97f4a7c15ull);
  QueryFuzzer fuzzer(WorkloadAlphabet(kind));
  for (int b = 0; b < batches; ++b) {
    std::string doc =
        GenerateWorkloadDocument(kind, seed * 100 + static_cast<uint64_t>(b),
                                 &rng);
    // Draw one extra family member and demote it to a decoy: the shared
    // plan then serves a registered-but-unchecked subscriber, so fan-out
    // bookkeeping that only corrupts co-subscribers cannot hide. Plus one
    // unrelated decoy for dispatch interference.
    std::vector<std::string> queries =
        fuzzer.NextSharedBatch(batch_size + 1, &rng);
    std::vector<std::string> decoys = {queries.back(), fuzzer.Next(&rng)};
    queries.pop_back();
    auto d = oracle->CheckBatch(queries, decoys, doc);
    ASSERT_FALSE(d.has_value())
        << "shared-skeleton workload " << WorkloadName(kind) << " seed "
        << seed << " batch " << b << "\n"
        << d->ToString();
  }
}

class DifftestSweep : public ::testing::TestWithParam<uint64_t> {};

// 4 workloads × 25 batches × 5 checked queries = 500 checks per seed;
// 10 seeds instantiated below = 5000 seeded iterations (plus the chain
// query every recursive batch).
TEST_P(DifftestSweep, FourWorkloadsAgreeOnAllRoutes) {
  Oracle oracle;
  const WorkloadKind paper_workloads[] = {
      WorkloadKind::kProtein, WorkloadKind::kBooks, WorkloadKind::kXmark,
      WorkloadKind::kRecursive};
  for (WorkloadKind kind : paper_workloads) {
    SweepWorkload(&oracle, kind, GetParam(), /*batches=*/25,
                  /*batch_size=*/5);
  }
  EXPECT_GE(oracle.checks_run(), 500u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, DifftestSweep,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 10));

class DifftestSharedSkeletonSweep
    : public ::testing::TestWithParam<uint64_t> {};

// 4 workloads × 25 batches × 5 family members = 500 checks per seed; the 10
// seeds below make the second 5000-iteration sweep, all through the fifth
// (shared-plan) route alongside the other four.
TEST_P(DifftestSharedSkeletonSweep, SkeletonFamiliesAgreeOnAllRoutes) {
  Oracle oracle;
  const WorkloadKind paper_workloads[] = {
      WorkloadKind::kProtein, WorkloadKind::kBooks, WorkloadKind::kXmark,
      WorkloadKind::kRecursive};
  for (WorkloadKind kind : paper_workloads) {
    SweepSharedSkeletons(&oracle, kind, GetParam(), /*batches=*/25,
                         /*batch_size=*/5);
  }
  EXPECT_GE(oracle.checks_run(), 500u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, DifftestSharedSkeletonSweep,
                         ::testing::Values(41, 42, 43, 44, 45, 46, 47, 48,
                                           49, 50));

class DifftestRandomDocSweep : public ::testing::TestWithParam<uint64_t> {};

// Markup-rich random documents (comments, CDATA, entities, padded and
// whitespace-only text) against the small-alphabet fuzzer.
TEST_P(DifftestRandomDocSweep, RandomDocumentsAgreeOnAllRoutes) {
  Oracle oracle;
  SweepWorkload(&oracle, WorkloadKind::kRandom, GetParam(), /*batches=*/25,
                /*batch_size=*/5);
}

INSTANTIATE_TEST_SUITE_P(Seeds, DifftestRandomDocSweep,
                         ::testing::Values(21, 22, 23, 24));

// The twigm route fed in tiny chunks: parser chunk handling must not
// change any route's answer. (Service and multi-query parse whole.)
TEST(DifftestChunkedFeed, ChunkedTwigMRouteAgrees) {
  OracleOptions options;
  options.feed_chunk_bytes = 7;
  Oracle oracle(options);
  SweepWorkload(&oracle, WorkloadKind::kRandom, 31, /*batches=*/10,
                /*batch_size=*/4);
  SweepWorkload(&oracle, WorkloadKind::kBooks, 32, /*batches=*/5,
                /*batch_size=*/4);
}

}  // namespace
}  // namespace vitex::difftest
