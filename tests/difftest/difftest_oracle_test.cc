// Unit tests for the differential oracle machinery itself: the fuzzer only
// emits compilable queries, the four routes produce identical normalized
// sets on hand-picked cases, sequence numbers line up across routes (the
// property that makes comparison exact), and the repro writer round-trips.

#include "difftest/oracle.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <set>
#include <string>

#include "common/random.h"
#include "difftest/query_fuzzer.h"
#include "xpath/query.h"

namespace vitex::difftest {
namespace {

TEST(QueryFuzzerTest, EveryQueryCompiles) {
  const QueryFuzzerOptions alphabets[] = {
      ProteinAlphabet(), BookAlphabet(), XmarkAlphabet(), RecursiveAlphabet(),
      RandomDocAlphabet()};
  for (const auto& alphabet : alphabets) {
    QueryFuzzer fuzzer(alphabet);
    Random rng(7);
    for (int i = 0; i < 500; ++i) {
      std::string q = fuzzer.Next(&rng);
      auto compiled = xpath::ParseAndCompile(q);
      EXPECT_TRUE(compiled.ok()) << q << ": " << compiled.status();
    }
  }
}

TEST(QueryFuzzerTest, CoversTheGrammar) {
  // One alphabet, many draws: the fuzzer must exercise every construct the
  // oracle is supposed to stress (not a distribution test, just presence).
  QueryFuzzer fuzzer(XmarkAlphabet());
  Random rng(11);
  bool saw_descendant = false, saw_wildcard = false, saw_not = false,
       saw_or = false, saw_and = false, saw_attr = false, saw_text = false,
       saw_compare = false, saw_nested = false;
  for (int i = 0; i < 2000; ++i) {
    std::string q = fuzzer.Next(&rng);
    saw_descendant |= q.find("//") != std::string::npos;
    saw_wildcard |= q.find('*') != std::string::npos;
    saw_not |= q.find("not(") != std::string::npos;
    saw_or |= q.find(" or ") != std::string::npos;
    saw_and |= q.find(" and ") != std::string::npos;
    saw_attr |= q.find('@') != std::string::npos;
    saw_text |= q.find("text()") != std::string::npos;
    saw_compare |= q.find('=') != std::string::npos ||
                   q.find('<') != std::string::npos ||
                   q.find('>') != std::string::npos;
    // A '[' inside an open '[' means nested predicates.
    int open = 0;
    for (char c : q) {
      if (c == '[') {
        if (open > 0) saw_nested = true;
        ++open;
      } else if (c == ']') {
        --open;
      }
    }
  }
  EXPECT_TRUE(saw_descendant);
  EXPECT_TRUE(saw_wildcard);
  EXPECT_TRUE(saw_not);
  EXPECT_TRUE(saw_or);
  EXPECT_TRUE(saw_and);
  EXPECT_TRUE(saw_attr);
  EXPECT_TRUE(saw_text);
  EXPECT_TRUE(saw_compare);
  EXPECT_TRUE(saw_nested);
}

TEST(OracleTest, HandPickedCasesAgree) {
  Oracle oracle;
  const std::pair<const char*, const char*> cases[] = {
      {"//a", "<a><a/></a>"},
      {"//a[b]//c", "<r><a><c/><b/></a><a><c/></a></r>"},
      {"//a[not(b)]", "<r><a><b/></a><a/></r>"},
      {"//a[@x = '1']//b", "<r><a x=\"1\"><b/></a><a x=\"2\"><b/></a></r>"},
      {"//a//@x", "<r><a x=\"s\"><b x=\"d\"/></a></r>"},
      {"//a//text()", "<r><a>one<b>two</b></a></r>"},
      {"//a[b = 5]", "<r><a><b>5</b></a><a><b>6</b></a></r>"},
      {"//a[b = 5]", "<r><a><b> 5 </b></a></r>"},  // number() trims
      {"//*[b]", "<r><a><b/></a><c><b/></c><d/></r>"},
  };
  for (const auto& [query, doc] : cases) {
    auto d = oracle.Check(query, doc);
    EXPECT_FALSE(d.has_value()) << d->ToString();
  }
}

TEST(OracleTest, SequenceNumbersIdenticalAcrossRoutes) {
  // The exactness claim: each route reports the same (sequence, fragment)
  // pairs, not merely the same fragments. Check the sets explicitly.
  const std::string doc =
      "<r><a x=\"1\"><b>t1</b></a><c/><a x=\"2\"><b>t2</b></a></r>";
  const std::string query = "//a/b";
  auto dom = Oracle::RunDom(query, doc);
  Oracle oracle;
  auto twig = oracle.RunTwigM(query, doc);
  auto multi = Oracle::RunMultiQuery({query}, {"//*"}, doc);
  auto service = Oracle::RunService({query}, {}, doc, 2);
  ASSERT_TRUE(dom.ok());
  ASSERT_TRUE(twig.ok());
  ASSERT_TRUE(multi.ok());
  ASSERT_TRUE(service.ok());
  ASSERT_EQ(dom.value().size(), 2u);
  // Sequences: r=0, a=1, @x=2, b=3, "t1"=4, c=5, a=6, @x=7, b=8, "t2"=9.
  EXPECT_EQ(dom.value()[0], (std::pair<uint64_t, std::string>(3, "<b>t1</b>")));
  EXPECT_EQ(dom.value()[1], (std::pair<uint64_t, std::string>(8, "<b>t2</b>")));
  EXPECT_EQ(twig.value(), dom.value());
  EXPECT_EQ(multi.value()[0], dom.value());
  EXPECT_EQ(service.value()[0], dom.value());
  // Multi-stream service: the document published once per stream yields
  // each (sequence, fragment) pair exactly stream_count times.
  auto multi_stream = Oracle::RunService({query}, {}, doc, 2, 3);
  ASSERT_TRUE(multi_stream.ok());
  ASSERT_EQ(multi_stream.value()[0].size(), 6u);
  for (size_t i = 0; i < multi_stream.value()[0].size(); ++i) {
    EXPECT_EQ(multi_stream.value()[0][i], dom.value()[i / 3]) << i;
  }
}

TEST(OracleTest, ShardAndStreamCountsSweepTheGridAndServiceAgrees) {
  OracleOptions options;
  options.max_shards = 4;
  options.max_streams = 2;
  Oracle oracle(options);
  const std::string doc = "<r><a><b>1</b></a><a><b>2</b></a></r>";
  // Each batch advances checks_ by 2, so 8 batches step the shard cycle
  // through 1,3,1,3,... and the stream cycle (advancing per shard-wrap)
  // through both values: a sweep across the stream×shard grid.
  for (int i = 0; i < 8; ++i) {
    auto d = oracle.CheckBatch({"//a[b]", "//a/b/text()"}, {"//*"}, doc);
    EXPECT_FALSE(d.has_value()) << d->ToString();
  }
  EXPECT_EQ(oracle.checks_run(), 16u);
}

TEST(OracleTest, ChunkedFeedAgrees) {
  OracleOptions options;
  options.feed_chunk_bytes = 3;
  Oracle oracle(options);
  auto d = oracle.Check("//a[b = 'x']//c",
                        "<r><a><b>x</b><c>deep</c></a><a><b>y</b><c/></a></r>");
  EXPECT_FALSE(d.has_value()) << d->ToString();
}

TEST(MinimizeDocumentTest, ShrinksToTheFailingCore) {
  // Predicate: "the bug reproduces iff the document still contains a <b>
  // with text 7 under an <a>". The minimizer must strip everything else.
  auto still_fails = [](const std::string& doc) {
    auto r = Oracle::RunDom("//a[b = 7]", doc);
    return r.ok() && !r.value().empty();
  };
  std::string big =
      "<r><x y=\"1\">noise</x><a><b>7</b><c>keep me not</c></a>"
      "<deep><deeper><deepest>zzz</deepest></deeper></deep>"
      "<a><b>8</b></a></r>";
  ASSERT_TRUE(still_fails(big));
  std::string minimized = MinimizeDocument(big, still_fails, 500);
  EXPECT_TRUE(still_fails(minimized)) << minimized;
  EXPECT_LT(minimized.size(), big.size());
  // Everything deletable without losing the repro is gone.
  EXPECT_EQ(minimized, "<r><a><b>7</b></a></r>");
}

TEST(MinimizeDocumentTest, ReturnsInputWhenNothingCanBeCut) {
  // Predicate rejects every reduction: the document comes back untouched.
  auto never = [](const std::string&) { return false; };
  const std::string doc = "<r><a/><b><a/></b></r>";
  EXPECT_EQ(MinimizeDocument(doc, never, 100), doc);
}

TEST(MinimizeDocumentTest, RespectsProbeBudget) {
  int probes = 0;
  auto counting = [&probes](const std::string&) {
    ++probes;
    return false;
  };
  MinimizeDocument("<r><a/><b/><c/><d/><e/><f/></r>", counting, 3);
  EXPECT_LE(probes, 3);
}

TEST(OracleTest, WriteReproFilesRoundTrips) {
  Divergence d;
  d.route_a = Route::kDom;
  d.route_b = Route::kService;
  d.query = "//a[b]";
  d.decoys = {"//*"};
  d.shard_count = 3;
  d.document = "<r><a><b/></a></r>";
  d.original_document_bytes = 100;
  d.detail = "entry #0 differs";
  std::string dir =
      (std::filesystem::temp_directory_path() / "vitex_repro_test").string();
  std::filesystem::remove_all(dir);
  auto path = WriteReproFiles(d, dir, 1);
  ASSERT_TRUE(path.ok()) << path.status();
  EXPECT_TRUE(std::filesystem::exists(dir + "/001-report.txt"));
  EXPECT_TRUE(std::filesystem::exists(dir + "/001-query.txt"));
  EXPECT_TRUE(std::filesystem::exists(dir + "/001-document.xml"));
  std::string report = d.ToString();
  EXPECT_NE(report.find("dom-baseline"), std::string::npos);
  EXPECT_NE(report.find("service"), std::string::npos);
  EXPECT_NE(report.find("//a[b]"), std::string::npos);
  EXPECT_NE(report.find("minimized from 100"), std::string::npos);
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace vitex::difftest
