// Named regressions for divergences the differential oracle surfaced (or
// was designed to surface) while this harness was built. Each test pins one
// fixed bug at the oracle level: all four routes must agree on the exact
// repro input, byte for byte. The parser-level pins live in
// tests/xml/sax_chunking_test.cc; these prove the fix end to end.

#include <gtest/gtest.h>

#include <string>

#include "difftest/oracle.h"

namespace vitex::difftest {
namespace {

// Bug: a whitespace-only text run longer than the SAX parser's 64 KB hold
// buffer was delivered when the stream arrived in chunks but suppressed
// when it arrived whole. The chunked-feed twigm route therefore matched
// //a/text() nodes the DOM baseline (whole-document parse) never saw.
// Fixed by node-level whitespace staging in SaxParser::HandleText.
TEST(DifftestRegressionTest, ChunkedLongWhitespaceRunAgreesWithDom) {
  OracleOptions options;
  options.feed_chunk_bytes = 4096;
  options.minimize = false;  // the repro is the point; don't shrink it
  Oracle oracle(options);
  std::string doc = "<a>" + std::string(80 * 1024, ' ') + "<b>x</b></a>";
  for (const char* query : {"//a/text()", "//a//text()", "//a[text()]"}) {
    auto d = oracle.Check(query, doc);
    EXPECT_FALSE(d.has_value()) << d->ToString();
  }
}

// Bug: whitespace-only CDATA sections were dropped by the parser, and
// plain whitespace around CDATA/comment seams was dropped even when the
// coalesced node had real content — so text() selections and value
// predicates saw "xy" where the node model says "x y". Fixed in
// SaxParser::HandleText/HandleCData; all routes share the parser, so the
// oracle check here proves the routes still agree on the new semantics.
TEST(DifftestRegressionTest, CdataWhitespaceSeamsAgreeAcrossRoutes) {
  Oracle oracle;
  const std::pair<const char*, const char*> cases[] = {
      {"//a/text()", "<r><a>x<![CDATA[ ]]>y</a><a>xy</a></r>"},
      {"//a[text() = 'x y']", "<r><a>x<![CDATA[ ]]>y</a><a>xy</a></r>"},
      {"//a/text()", "<r><a> <![CDATA[x]]></a></r>"},
      {"//a[text()]", "<r><a><![CDATA[ ]]></a><a></a></r>"},
      {"//a/text()", "<r><a>x<!--c--> </a></r>"},
      {"//a[text() = ' ']", "<r><a>&#32;</a><a> </a></r>"},
  };
  for (const auto& [query, doc] : cases) {
    auto d = oracle.Check(query, doc);
    EXPECT_FALSE(d.has_value()) << d->ToString();
  }
}

// Bug class: QueryNode::CompareValue re-parsed the RHS literal per event
// and treated whitespace-only node text as the number 0, so predicates
// like [b = 0] matched formatting whitespace. The compile-time coercion
// fix is pinned table-style in tests/xpath/compare_value_test.cc; here the
// oracle proves all four routes share the new number() semantics on the
// adversarial spellings.
TEST(DifftestRegressionTest, NumericCoercionAgreesAcrossRoutes) {
  Oracle oracle;
  const std::string doc =
      "<r>"
      "<a><b>10</b></a>"
      "<a><b> 10 </b></a>"
      "<a><b>1e1</b></a>"
      "<a><b>10.0</b></a>"
      "<a><b>abc</b></a>"
      "<a><b>&#32;&#32;</b></a>"
      "<a><b>0</b></a>"
      "</r>";
  for (const char* query :
       {"//a[b = 10]", "//a[b != 10]", "//a[b = 0]", "//a[b < 10]",
        "//a[b >= 10]", "//a[b = '10']", "//a[b != '10']", "//a[b < '11']"}) {
    auto d = oracle.Check(query, doc);
    EXPECT_FALSE(d.has_value()) << d->ToString();
  }
}

}  // namespace
}  // namespace vitex::difftest
