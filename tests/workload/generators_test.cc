#include <gtest/gtest.h>

#include "common/random.h"
#include "workload/book_generator.h"
#include "workload/protein_generator.h"
#include "workload/random_generator.h"
#include "workload/recursive_generator.h"
#include "workload/xmark_generator.h"
#include "xml/dom.h"
#include "xml/sax_parser.h"
#include "xpath/query.h"

namespace vitex::workload {
namespace {

// Every generator's output must be well-formed XML.
class WellFormedHandler : public xml::ContentHandler {};

bool IsWellFormed(std::string_view doc) {
  WellFormedHandler handler;
  return xml::ParseString(doc, &handler).ok();
}

TEST(ProteinGeneratorTest, ProducesWellFormedXml) {
  ProteinOptions options;
  options.entries = 50;
  auto doc = GenerateProteinString(options);
  ASSERT_TRUE(doc.ok());
  EXPECT_TRUE(IsWellFormed(doc.value()));
}

TEST(ProteinGeneratorTest, EntryCountMatches) {
  ProteinOptions options;
  options.entries = 37;
  auto doc = GenerateProteinString(options);
  ASSERT_TRUE(doc.ok());
  size_t count = 0, pos = 0;
  while ((pos = doc->find("<ProteinEntry ", pos)) != std::string::npos) {
    ++count;
    ++pos;
  }
  EXPECT_EQ(count, 37u);
}

TEST(ProteinGeneratorTest, DeterministicForSeed) {
  ProteinOptions options;
  options.entries = 10;
  auto a = GenerateProteinString(options);
  auto b = GenerateProteinString(options);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a.value(), b.value());
  options.seed = 43;
  auto c = GenerateProteinString(options);
  ASSERT_TRUE(c.ok());
  EXPECT_NE(a.value(), c.value());
}

TEST(ProteinGeneratorTest, ReferenceProbabilityRespected) {
  ProteinOptions options;
  options.entries = 300;
  options.reference_probability = 0.5;
  auto doc = GenerateProteinString(options);
  ASSERT_TRUE(doc.ok());
  size_t entries_with_ref = 0, pos = 0;
  // Count entries, then entries containing <reference>.
  auto dom = xml::ParseIntoDom(doc.value());
  ASSERT_TRUE(dom.ok());
  for (const xml::DomNode* e = dom->root()->first_child; e != nullptr;
       e = e->next_sibling) {
    if (!e->IsElement()) continue;
    for (const xml::DomNode* c = e->first_child; c != nullptr;
         c = c->next_sibling) {
      if (c->IsElement() && c->name == "reference") {
        ++entries_with_ref;
        break;
      }
    }
  }
  (void)pos;
  EXPECT_NEAR(static_cast<double>(entries_with_ref) / 300.0, 0.5, 0.12);
}

TEST(ProteinGeneratorTest, FileGenerationReachesTarget) {
  std::string path = ::testing::TempDir() + "/vitex_protein_gen.xml";
  auto entries = GenerateProteinFile(path, 200 * 1024, 1);
  ASSERT_TRUE(entries.ok()) << entries.status();
  EXPECT_GT(entries.value(), 50u);
  WellFormedHandler handler;
  EXPECT_TRUE(xml::ParseFile(path, &handler).ok());
  std::remove(path.c_str());
}

TEST(BookGeneratorTest, Figure1Shape) {
  std::string doc = Figure1Document();
  EXPECT_TRUE(IsWellFormed(doc));
  auto dom = xml::ParseIntoDom(doc);
  ASSERT_TRUE(dom.ok());
  EXPECT_EQ(dom->root()->name, "book");
}

TEST(BookGeneratorTest, RandomBooksWellFormed) {
  for (uint64_t seed : {1u, 2u, 3u}) {
    BookOptions options;
    options.seed = seed;
    options.section_depth = 4;
    options.table_depth = 4;
    options.chains = 3;
    auto doc = GenerateBookString(options);
    ASSERT_TRUE(doc.ok());
    EXPECT_TRUE(IsWellFormed(doc.value())) << "seed " << seed;
  }
}

TEST(RecursiveGeneratorTest, DepthRespected) {
  RecursiveOptions options;
  options.depth = 9;
  auto doc = GenerateRecursiveString(options);
  ASSERT_TRUE(doc.ok());
  EXPECT_TRUE(IsWellFormed(doc.value()));
  WellFormedHandler handler;
  xml::SaxParser p2(&handler);
  ASSERT_TRUE(p2.Feed(doc.value()).ok());
  ASSERT_TRUE(p2.Finish().ok());
  // root + 9 a's + leaf children.
  EXPECT_GE(p2.stats().max_depth, 10);
}

TEST(RecursiveGeneratorTest, ChainQueryBuilder) {
  EXPECT_EQ(RecursiveChainQuery(2), "//a[p]//a[p]//v");
  EXPECT_EQ(RecursiveChainQuery(1, false), "//a//v");
}

TEST(XmarkGeneratorTest, WellFormedAndScales) {
  XmarkOptions small;
  small.items_per_region = 5;
  auto doc_small = GenerateXmarkString(small);
  ASSERT_TRUE(doc_small.ok());
  EXPECT_TRUE(IsWellFormed(doc_small.value()));

  XmarkOptions larger;
  larger.items_per_region = 20;
  auto doc_large = GenerateXmarkString(larger);
  ASSERT_TRUE(doc_large.ok());
  EXPECT_GT(doc_large->size(), doc_small->size() * 2);
}

TEST(XmarkGeneratorTest, ContainsExpectedStructure) {
  XmarkOptions options;
  options.items_per_region = 3;
  auto doc = GenerateXmarkString(options);
  ASSERT_TRUE(doc.ok());
  EXPECT_NE(doc->find("<open_auctions>"), std::string::npos);
  EXPECT_NE(doc->find("<people>"), std::string::npos);
  EXPECT_NE(doc->find("incategory"), std::string::npos);
}

TEST(RandomDocGeneratorTest, AlwaysWellFormed) {
  Random rng(555);
  RandomDocOptions options;
  for (int i = 0; i < 50; ++i) {
    std::string doc = GenerateRandomDocument(options, &rng);
    EXPECT_TRUE(IsWellFormed(doc)) << doc;
  }
}

TEST(RandomDocGeneratorTest, RespectsElementCap) {
  Random rng(7);
  RandomDocOptions options;
  options.max_elements = 20;
  for (int i = 0; i < 20; ++i) {
    std::string doc = GenerateRandomDocument(options, &rng);
    // Count start tags (find("<t") skips end tags, which begin with "</").
    size_t opens = 0, pos = 0;
    while ((pos = doc.find("<t", pos)) != std::string::npos) {
      ++opens;
      ++pos;
    }
    EXPECT_LE(opens, 20u);
  }
}

TEST(RandomQueryGeneratorTest, AlwaysCompiles) {
  Random rng(31337);
  RandomQueryOptions options;
  for (int i = 0; i < 200; ++i) {
    std::string q = GenerateRandomQuery(options, &rng);
    auto compiled = vitex::xpath::ParseAndCompile(q);
    EXPECT_TRUE(compiled.ok()) << q << ": " << compiled.status();
  }
}

TEST(RandomQueryGeneratorTest, ProducesVariety) {
  Random rng(2);
  RandomQueryOptions options;
  bool saw_predicate = false, saw_descendant = false, saw_attribute = false;
  for (int i = 0; i < 100; ++i) {
    std::string q = GenerateRandomQuery(options, &rng);
    saw_predicate |= q.find('[') != std::string::npos;
    saw_descendant |= q.find("//") != std::string::npos;
    saw_attribute |= q.find('@') != std::string::npos;
  }
  EXPECT_TRUE(saw_predicate);
  EXPECT_TRUE(saw_descendant);
  EXPECT_TRUE(saw_attribute);
}

}  // namespace
}  // namespace vitex::workload
