// Prometheus serializer golden test and the live /statsz exposition of a
// running StreamService (the ISSUE 7 acceptance pin; the Statsz CI regex
// picks this file up in the asan-ubsan and tsan jobs).

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>

#include "obs/metrics.h"
#include "obs/prometheus.h"
#include "service/stream_service.h"

namespace vitex {
namespace {

// The serializer's exact output is contract: dashboards and the statsz
// smoke parser consume it. Pin every byte.
TEST(ObsStatszTest, PrometheusGoldenText) {
  obs::Registry registry;
  obs::Counter* docs = registry.AddCounter("vitex_test_docs_total",
                                           "Documents counted.");
  obs::Gauge* depth =
      registry.AddGauge("vitex_test_depth", "Queue depth.", {{"shard", "0"}});
  obs::Histogram* lat =
      registry.AddHistogram("vitex_test_lat_nanos", "Latency.");
  docs->Add(3);
  depth->Set(7);
  for (uint64_t v : {0ull, 1ull, 2ull, 3ull, 4ull, 1000ull}) lat->Record(v);

  const char* kGolden =
      "# HELP vitex_test_docs_total Documents counted.\n"
      "# TYPE vitex_test_docs_total counter\n"
      "vitex_test_docs_total 3\n"
      "# HELP vitex_test_depth Queue depth.\n"
      "# TYPE vitex_test_depth gauge\n"
      "vitex_test_depth{shard=\"0\"} 7\n"
      "# HELP vitex_test_lat_nanos Latency.\n"
      "# TYPE vitex_test_lat_nanos histogram\n"
      "vitex_test_lat_nanos_bucket{le=\"0\"} 1\n"
      "vitex_test_lat_nanos_bucket{le=\"1\"} 2\n"
      "vitex_test_lat_nanos_bucket{le=\"3\"} 4\n"
      "vitex_test_lat_nanos_bucket{le=\"7\"} 5\n"
      "vitex_test_lat_nanos_bucket{le=\"1023\"} 6\n"
      "vitex_test_lat_nanos_bucket{le=\"+Inf\"} 6\n"
      "vitex_test_lat_nanos_sum 1010\n"
      "vitex_test_lat_nanos_count 6\n"
      "# TYPE vitex_test_lat_nanos_p50 gauge\n"
      "vitex_test_lat_nanos_p50 2.5\n"
      "# TYPE vitex_test_lat_nanos_p90 gauge\n"
      "vitex_test_lat_nanos_p90 1000\n"
      "# TYPE vitex_test_lat_nanos_p99 gauge\n"
      "vitex_test_lat_nanos_p99 1000\n"
      "# TYPE vitex_test_lat_nanos_max gauge\n"
      "vitex_test_lat_nanos_max 1000\n";
  EXPECT_EQ(registry.RenderText(), kGolden);
}

TEST(ObsStatszTest, SameNameHistogramInstancesMergeAtRender) {
  // The per-shard pattern: every writer registers a private instance under
  // one name; the exposition shows their union as a single series.
  obs::Registry registry;
  obs::Histogram* shard0 = registry.AddHistogram("vitex_merge_nanos", "m");
  obs::Histogram* shard1 = registry.AddHistogram("vitex_merge_nanos", "m");
  shard0->Record(1);
  shard0->Record(1);
  shard1->Record(1000);
  std::string text = registry.RenderText();
  EXPECT_NE(text.find("vitex_merge_nanos_count 3\n"), std::string::npos)
      << text;
  EXPECT_NE(text.find("vitex_merge_nanos_sum 1002\n"), std::string::npos);
  EXPECT_NE(text.find("vitex_merge_nanos_max 1000\n"), std::string::npos);
  // One TYPE header, not one per instance.
  size_t first = text.find("# TYPE vitex_merge_nanos histogram");
  ASSERT_NE(first, std::string::npos);
  EXPECT_EQ(text.find("# TYPE vitex_merge_nanos histogram", first + 1),
            std::string::npos);
}

TEST(ObsStatszTest, LabelValuesAreEscaped) {
  obs::PrometheusWriter w;
  w.WriteGauge("vitex_esc", "", {{"q", "a\"b\\c\nd"}}, 1);
  EXPECT_EQ(w.text(),
            "# TYPE vitex_esc gauge\n"
            "vitex_esc{q=\"a\\\"b\\\\c\\nd\"} 1\n");
}

std::string FeedDoc(int items) {
  std::string doc = "<feed>";
  for (int i = 0; i < items; ++i) {
    doc += "<item" + std::to_string(i % 8) + "><val>v" + std::to_string(i) +
           "</val></item" + std::to_string(i % 8) + ">";
  }
  doc += "</feed>";
  return doc;
}

// Live acceptance: a traced service's /statsz payload carries the
// pipeline counters, queue watermark gauges, and every per-stage latency
// histogram with its quantile summary lines.
TEST(ObsStatszTest, StreamServiceStatszCoversCountersQueuesAndStages) {
  service::StreamServiceOptions options;
  options.shard_count = 2;
  options.stream_count = 2;
  options.queue_capacity = 4;
  service::StreamService service(options);
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(
        service.Subscribe("//item" + std::to_string(i) + "/val/text()").ok());
  }
  for (int d = 0; d < 24; ++d) {
    ASSERT_TRUE(service.Publish(FeedDoc(32)).ok());
  }
  ASSERT_TRUE(service.Flush().ok());
  std::string text = service.StatszText();

  for (const char* needle : {
           "vitex_documents_published_total 24\n",
           "vitex_documents_processed_total 24\n",
           "vitex_active_subscriptions 8\n",
           "vitex_stream_queue_high_watermark{stream=\"0\"} ",
           "vitex_stream_publish_blocked_nanos_total{stream=\"1\"} ",
           "vitex_shard_inbox_high_watermark{shard=\"1\"} ",
           "vitex_shard_fanout_blocked_nanos_total{shard=\"0\"} ",
           "vitex_shard_dispatch_start_visits_total{shard=\"0\"} ",
           "vitex_shard_dispatch_machines{shard=\"1\"} ",
           "# TYPE vitex_stage_ingest_wait_nanos histogram",
           "# TYPE vitex_stage_parse_nanos histogram",
           "# TYPE vitex_stage_shard_queue_wait_nanos histogram",
           "# TYPE vitex_stage_match_nanos histogram",
           "# TYPE vitex_stage_e2e_nanos histogram",
           "vitex_stage_e2e_nanos_p50 ",
           "vitex_stage_e2e_nanos_p90 ",
           "vitex_stage_e2e_nanos_p99 ",
           "vitex_stage_match_nanos_max ",
       }) {
    EXPECT_NE(text.find(needle), std::string::npos)
        << "missing: " << needle << "\n"
        << text;
  }
  // Every shard replayed every document, so each stage histogram saw all
  // of them: 24 parses, 48 shard passes, 24 end-to-end samples.
  EXPECT_NE(text.find("vitex_stage_parse_nanos_count 24\n"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("vitex_stage_match_nanos_count 48\n"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("vitex_stage_e2e_nanos_count 24\n"), std::string::npos)
      << text;
}

TEST(ObsStatszTest, TracingOffDropsStageSeriesButKeepsCounters) {
  service::StreamServiceOptions options;
  options.shard_count = 1;
  options.enable_tracing = false;
  service::StreamService service(options);
  ASSERT_TRUE(service.Subscribe("//item0/val/text()").ok());
  ASSERT_TRUE(service.Publish(FeedDoc(8)).ok());
  ASSERT_TRUE(service.Flush().ok());
  std::string text = service.StatszText();
  EXPECT_EQ(text.find("vitex_stage_"), std::string::npos) << text;
  EXPECT_NE(text.find("vitex_documents_published_total 1\n"),
            std::string::npos);
  EXPECT_NE(text.find("vitex_shard_inbox_high_watermark{shard=\"0\"} "),
            std::string::npos);
}

// Satellite: rates are floored to 0 until the service has real uptime —
// never a division by near-zero. (Either the floor held the rate at 0, or
// enough wall time passed that the rate is finite and sane.)
TEST(ObsStatszTest, RatesRespectMinimumUptimeFloor) {
  service::StreamServiceOptions options;
  options.shard_count = 1;
  service::StreamService service(options);
  ASSERT_TRUE(service.Publish("<a><b>x</b></a>").ok());
  ASSERT_TRUE(service.Flush().ok());
  service::ServiceStats stats = service.stats();
  ASSERT_EQ(stats.documents_processed, 1u);
  if (stats.uptime_seconds < service::StreamService::kMinRateUptimeSeconds) {
    EXPECT_EQ(stats.docs_per_sec, 0.0);
    EXPECT_EQ(stats.events_per_sec, 0.0);
  } else {
    EXPECT_LE(stats.docs_per_sec,
              1.0 / service::StreamService::kMinRateUptimeSeconds);
  }
}

}  // namespace
}  // namespace vitex
