// Metrics-core tests (DESIGN.md §10): bucket-boundary table, concurrent
// hammering with a racing snapshot reader (run under TSan in CI — the
// Obs|Metrics regex), and counter/gauge basics.

#include "obs/metrics.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <limits>
#include <thread>
#include <vector>

namespace vitex::obs {
namespace {

TEST(ObsMetricsTest, CounterAndGaugeBasics) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.Increment();
  c.Add(41);
  EXPECT_EQ(c.value(), 42u);

  Gauge g;
  g.Set(7);
  EXPECT_EQ(g.value(), 7u);
  g.UpdateMax(3);  // lower: no-op
  EXPECT_EQ(g.value(), 7u);
  g.UpdateMax(19);
  EXPECT_EQ(g.value(), 19u);
}

TEST(ObsMetricsTest, BucketBoundaryTable) {
  const uint64_t kMax = std::numeric_limits<uint64_t>::max();
  struct {
    uint64_t value;
    int bucket;
  } kCases[] = {
      {0, 0},
      {1, 1},
      {2, 2},
      {3, 2},
      {4, 3},
      {7, 3},
      {8, 4},
      {1023, 10},
      {1024, 11},
      {(uint64_t{1} << 31) - 1, 31},
      {uint64_t{1} << 31, 32},
      {(uint64_t{1} << 62) - 1, 62},
      {uint64_t{1} << 62, 63},
      {uint64_t{1} << 63, 63},  // top bucket absorbs the last power of two
      {kMax, 63},
  };
  for (const auto& c : kCases) {
    EXPECT_EQ(Histogram::BucketIndex(c.value), c.bucket)
        << "value " << c.value;
  }
  // Upper bounds are inclusive and consistent with the index function:
  // every value lands in a bucket whose bound is >= the value, and the
  // previous bucket's bound is < the value.
  for (const auto& c : kCases) {
    EXPECT_GE(Histogram::BucketUpperBound(c.bucket), c.value);
    if (c.bucket > 0) {
      EXPECT_LT(Histogram::BucketUpperBound(c.bucket - 1), c.value);
    }
  }
  EXPECT_EQ(Histogram::BucketUpperBound(0), 0u);
  EXPECT_EQ(Histogram::BucketUpperBound(1), 1u);
  EXPECT_EQ(Histogram::BucketUpperBound(2), 3u);
  EXPECT_EQ(Histogram::BucketUpperBound(63), kMax);
}

TEST(ObsMetricsTest, RecordSnapshotAndQuantiles) {
  Histogram h;
  for (uint64_t v : {0ull, 1ull, 2ull, 3ull, 4ull, 1000ull}) h.Record(v);
  HistogramSnapshot snap = h.Snapshot();
  EXPECT_EQ(snap.count(), 6u);
  EXPECT_EQ(snap.sum, 1010u);
  EXPECT_EQ(snap.max, 1000u);
  EXPECT_DOUBLE_EQ(snap.Quantile(0.50), 2.5);  // interpolated inside [2,3]
  EXPECT_DOUBLE_EQ(snap.Quantile(0.90), 1000.0);  // clamped to observed max
  EXPECT_DOUBLE_EQ(snap.Quantile(0.99), 1000.0);
  EXPECT_DOUBLE_EQ(HistogramSnapshot{}.Quantile(0.5), 0.0);  // empty
}

TEST(ObsMetricsTest, MergeAddsCountsAndKeepsMax) {
  Histogram a, b;
  a.Record(5);
  a.Record(100);
  b.Record(7);
  b.Record(90000);
  HistogramSnapshot merged = a.Snapshot();
  merged.MergeFrom(b.Snapshot());
  EXPECT_EQ(merged.count(), 4u);
  EXPECT_EQ(merged.sum, 90112u);
  EXPECT_EQ(merged.max, 90000u);
}

TEST(ObsMetricsTest, RegistryPointersStableAcrossGrowth) {
  Registry registry;
  Counter* first = registry.AddCounter("vitex_first_total", "first");
  std::vector<Histogram*> hists;
  for (int i = 0; i < 100; ++i) {
    hists.push_back(registry.AddHistogram("vitex_some_nanos", "growth"));
  }
  first->Add(5);
  hists.front()->Record(1);
  EXPECT_EQ(first->value(), 5u);  // not invalidated by 100 registrations
  EXPECT_EQ(hists.front()->Snapshot().count(), 1u);
}

// The TSan acceptance scenario: N writer threads hammer ONE histogram
// while a reader snapshots and merges concurrently; after join the count
// and sum are exact (every Record is one relaxed increment, none lost).
TEST(ObsMetricsTest, ConcurrentHammerWithRacingSnapshots) {
  constexpr int kThreads = 8;
  constexpr uint64_t kPerThread = 20000;
  Histogram h;
  std::atomic<bool> done{false};

  std::thread reader([&] {
    uint64_t last_count = 0;
    while (!done.load(std::memory_order_acquire)) {
      HistogramSnapshot snap = h.Snapshot();
      uint64_t count = snap.count();
      // Counts only grow, and a racing snapshot is still well-formed.
      EXPECT_GE(count, last_count);
      EXPECT_LE(count, kThreads * kPerThread);
      last_count = count;
    }
  });

  std::vector<std::thread> writers;
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&h, t] {
      for (uint64_t i = 0; i < kPerThread; ++i) {
        h.Record((i + static_cast<uint64_t>(t)) % 1024);
      }
    });
  }
  for (auto& w : writers) w.join();
  done.store(true, std::memory_order_release);
  reader.join();

  uint64_t expected_sum = 0;
  for (int t = 0; t < kThreads; ++t) {
    for (uint64_t i = 0; i < kPerThread; ++i) {
      expected_sum += (i + static_cast<uint64_t>(t)) % 1024;
    }
  }
  HistogramSnapshot final_snap = h.Snapshot();
  EXPECT_EQ(final_snap.count(), kThreads * kPerThread);
  EXPECT_EQ(final_snap.sum, expected_sum);
  EXPECT_EQ(final_snap.max, 1023u);
}

}  // namespace
}  // namespace vitex::obs
