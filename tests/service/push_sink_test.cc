// Push-mode delivery through the public facade (service/vitex.h +
// service/match_sink.h): Subscribe(xpath, SinkOptions) hands deliveries
// to a MatchSink on shard threads instead of buffering for Drain. These
// tests pin the contract net/server.cc is built on: per-subscription
// delivery order, the OnMatch-refusal/OnOverflow accounting, Drain being
// an error on push subscriptions, and the sink staying alive (no
// OnMatch on a dead object) across the ASYNC unsubscribe window.

#include "service/match_sink.h"

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "service/vitex.h"

namespace vitex {
namespace {

using service::Delivery;
using service::DeliveryMode;
using service::MatchSink;
using service::SinkOptions;
using service::SubscriptionId;

// Records every OnMatch/OnOverflow; can be told to refuse deliveries.
class RecordingSink : public MatchSink {
 public:
  bool OnMatch(SubscriptionId id, const Delivery& delivery) override {
    std::lock_guard<std::mutex> lock(mu_);
    if (refuse_) return false;
    fragments_.push_back(delivery.fragment);
    ids_.push_back(id);
    return true;
  }

  void OnOverflow(SubscriptionId id, uint64_t dropped_total) override {
    std::lock_guard<std::mutex> lock(mu_);
    overflow_calls_.push_back(dropped_total);
    last_overflow_id_ = id;
  }

  void set_refuse(bool refuse) {
    std::lock_guard<std::mutex> lock(mu_);
    refuse_ = refuse;
  }

  std::vector<std::string> fragments() const {
    std::lock_guard<std::mutex> lock(mu_);
    return fragments_;
  }
  std::vector<SubscriptionId> ids() const {
    std::lock_guard<std::mutex> lock(mu_);
    return ids_;
  }
  std::vector<uint64_t> overflow_calls() const {
    std::lock_guard<std::mutex> lock(mu_);
    return overflow_calls_;
  }
  SubscriptionId last_overflow_id() const {
    std::lock_guard<std::mutex> lock(mu_);
    return last_overflow_id_;
  }

 private:
  mutable std::mutex mu_;
  bool refuse_ = false;
  std::vector<std::string> fragments_;
  std::vector<SubscriptionId> ids_;
  std::vector<uint64_t> overflow_calls_;
  SubscriptionId last_overflow_id_ = 0;
};

ServiceOptions TwoShardOptions() {
  ServiceOptions options;
  options.shard_count = 2;
  options.stream_count = 1;
  return options;
}

TEST(ServicePushSinkTest, DeliversInPublishOrderWithSubscriptionId) {
  Service service(TwoShardOptions());
  auto sink = std::make_shared<RecordingSink>();
  SinkOptions push;
  push.mode = DeliveryMode::kPush;
  push.sink = sink;
  auto sub = service.Subscribe("//item/text()", push);
  ASSERT_TRUE(sub.ok()) << sub.status().ToString();

  for (int d = 0; d < 50; ++d) {
    ASSERT_TRUE(
        service.Publish("<r><item>v" + std::to_string(d) + "</item></r>")
            .ok());
  }
  ASSERT_TRUE(service.Flush().ok());

  std::vector<std::string> got = sink->fragments();
  ASSERT_EQ(got.size(), 50u);
  for (int d = 0; d < 50; ++d) {
    EXPECT_EQ(got[static_cast<size_t>(d)], "v" + std::to_string(d));
  }
  for (SubscriptionId id : sink->ids()) {
    EXPECT_EQ(id, sub->id());
  }
}

TEST(ServicePushSinkTest, DrainIsAnErrorOnPushSubscriptions) {
  Service service(TwoShardOptions());
  auto sink = std::make_shared<RecordingSink>();
  SinkOptions push;
  push.mode = DeliveryMode::kPush;
  push.sink = sink;
  auto sub = service.Subscribe("//a", push);
  ASSERT_TRUE(sub.ok());
  auto drained = sub->Drain();
  EXPECT_FALSE(drained.ok());
  EXPECT_EQ(drained.status().code(), StatusCode::kInvalidArgument);
}

TEST(ServicePushSinkTest, PushModeRequiresASink) {
  Service service(TwoShardOptions());
  SinkOptions push;
  push.mode = DeliveryMode::kPush;  // sink left null
  auto sub = service.Subscribe("//a", push);
  EXPECT_FALSE(sub.ok());
  EXPECT_EQ(sub.status().code(), StatusCode::kInvalidArgument);
}

TEST(ServicePushSinkTest, RefusedDeliveriesCountAsOverflowed) {
  Service service(TwoShardOptions());
  auto sink = std::make_shared<RecordingSink>();
  sink->set_refuse(true);
  SinkOptions push;
  push.mode = DeliveryMode::kPush;
  push.sink = sink;
  auto sub = service.Subscribe("//item/text()", push);
  ASSERT_TRUE(sub.ok());

  constexpr int kDocs = 10;
  for (int d = 0; d < kDocs; ++d) {
    ASSERT_TRUE(service.Publish("<r><item>x</item></r>").ok());
  }
  ASSERT_TRUE(service.Flush().ok());

  EXPECT_TRUE(sink->fragments().empty());
  // One OnOverflow per refusal, on the refusing thread, with a running
  // total that ends at kDocs.
  std::vector<uint64_t> overflow = sink->overflow_calls();
  ASSERT_EQ(overflow.size(), static_cast<size_t>(kDocs));
  EXPECT_EQ(overflow.back(), static_cast<uint64_t>(kDocs));
  EXPECT_EQ(sink->last_overflow_id(), sub->id());
  EXPECT_EQ(service.stats().results_overflowed,
            static_cast<uint64_t>(kDocs));
  EXPECT_EQ(service.stats().results_delivered, 0u);
}

TEST(ServicePushSinkTest, SinkOutlivesTheAsyncUnsubscribeWindow) {
  // Unsubscribe returns immediately (marker semantics); the service must
  // keep the sink alive until the marker applies on every shard, so an
  // OnMatch racing the unsubscribe never touches a dead object. ASan
  // turns a violation into a hard failure; the weak_ptr observes the
  // release once the service lets go.
  Service service(TwoShardOptions());
  auto sink = std::make_shared<RecordingSink>();
  std::weak_ptr<RecordingSink> watch = sink;
  SinkOptions push;
  push.mode = DeliveryMode::kPush;
  push.sink = sink;
  // Move: a lingering SinkOptions copy would hold the sink itself.
  auto sub = service.Subscribe("//item/text()", std::move(push));
  ASSERT_TRUE(sub.ok());

  for (int d = 0; d < 20; ++d) {
    ASSERT_TRUE(service.Publish("<r><item>y</item></r>").ok());
  }
  ASSERT_TRUE(sub->Unsubscribe().ok());  // async: returns before applied
  sink.reset();  // our reference is gone; the service's must suffice
  ASSERT_TRUE(service.Flush().ok());

  // Once flushed, the markers applied and the service released the sink.
  ASSERT_TRUE(service.Stop().ok());
  EXPECT_TRUE(watch.expired());
}

TEST(ServicePushSinkTest, PushAndPullSubscriptionsCoexist) {
  Service service(TwoShardOptions());
  auto sink = std::make_shared<RecordingSink>();
  SinkOptions push;
  push.mode = DeliveryMode::kPush;
  push.sink = sink;
  auto push_sub = service.Subscribe("//item/text()", push);
  auto pull_sub = service.Subscribe("//item/text()");
  ASSERT_TRUE(push_sub.ok());
  ASSERT_TRUE(pull_sub.ok());

  ASSERT_TRUE(service.Publish("<r><item>both</item></r>").ok());
  ASSERT_TRUE(service.Flush().ok());

  auto drained = pull_sub->Drain();
  ASSERT_TRUE(drained.ok());
  ASSERT_EQ(drained->size(), 1u);
  EXPECT_EQ((*drained)[0].fragment, "both");
  std::vector<std::string> pushed = sink->fragments();
  ASSERT_EQ(pushed.size(), 1u);
  EXPECT_EQ(pushed[0], "both");
}

}  // namespace
}  // namespace vitex
