#include "service/bounded_queue.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <atomic>
#include <string>
#include <thread>
#include <vector>

namespace vitex::service {
namespace {

TEST(BoundedQueueTest, FifoOrder) {
  BoundedQueue<int> q(8);
  for (int i = 0; i < 5; ++i) EXPECT_TRUE(q.Push(i));
  EXPECT_EQ(q.size(), 5u);
  for (int i = 0; i < 5; ++i) {
    auto v = q.Pop();
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, i);
  }
  EXPECT_EQ(q.size(), 0u);
}

TEST(BoundedQueueTest, CapacityClampedToOne) {
  BoundedQueue<int> q(0);
  EXPECT_EQ(q.capacity(), 1u);
}

TEST(BoundedQueueTest, CloseDrainsPendingThenEnds) {
  BoundedQueue<std::string> q(4);
  EXPECT_TRUE(q.Push("a"));
  EXPECT_TRUE(q.Push("b"));
  q.Close();
  EXPECT_FALSE(q.Push("c"));  // closed: rejected
  auto a = q.Pop();
  auto b = q.Pop();
  ASSERT_TRUE(a && b);  // already-queued items still drain
  EXPECT_EQ(*a, "a");
  EXPECT_EQ(*b, "b");
  EXPECT_FALSE(q.Pop().has_value());  // drained + closed
}

TEST(BoundedQueueTest, PushBlocksUntilPopMakesRoom) {
  BoundedQueue<int> q(1);
  ASSERT_TRUE(q.Push(1));
  std::atomic<bool> second_pushed{false};
  std::thread producer([&] {
    EXPECT_TRUE(q.Push(2));  // blocks: queue is full
    second_pushed.store(true);
  });
  // The producer cannot complete until we pop.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(second_pushed.load());
  EXPECT_EQ(q.Pop().value(), 1);
  producer.join();
  EXPECT_TRUE(second_pushed.load());
  EXPECT_EQ(q.Pop().value(), 2);
}

TEST(BoundedQueueTest, CloseWakesBlockedProducer) {
  BoundedQueue<int> q(1);
  ASSERT_TRUE(q.Push(1));
  std::thread producer([&] { EXPECT_FALSE(q.Push(2)); });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  q.Close();
  producer.join();
}

TEST(BoundedQueueTest, ManyProducersManyConsumers) {
  BoundedQueue<int> q(16);
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 500;
  std::atomic<long> sum{0};
  std::atomic<int> popped{0};
  std::vector<std::thread> threads;
  for (int p = 0; p < kProducers; ++p) {
    threads.emplace_back([&q, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        ASSERT_TRUE(q.Push(p * kPerProducer + i));
      }
    });
  }
  for (int c = 0; c < 3; ++c) {
    threads.emplace_back([&] {
      while (auto v = q.Pop()) {
        sum.fetch_add(*v);
        popped.fetch_add(1);
      }
    });
  }
  for (int p = 0; p < kProducers; ++p) threads[p].join();
  q.Close();
  for (size_t i = kProducers; i < threads.size(); ++i) threads[i].join();
  const long n = kProducers * kPerProducer;
  EXPECT_EQ(popped.load(), n);
  EXPECT_EQ(sum.load(), n * (n - 1) / 2);
}

// The drain guarantee under a shutdown race: producers blocked in Push on a
// FULL queue race Close(). Every Push that returned true must be popped
// exactly once; every Push that returned false must never appear. No item
// lost, none duplicated.
TEST(BoundedQueueTest, PushRacingCloseWhileFullLosesNothing) {
  for (int round = 0; round < 20; ++round) {
    BoundedQueue<int> q(2);
    constexpr int kProducers = 4;
    constexpr int kPerProducer = 50;
    std::array<std::atomic<bool>, kProducers * kPerProducer> accepted{};
    std::vector<std::thread> producers;
    for (int p = 0; p < kProducers; ++p) {
      producers.emplace_back([&q, &accepted, p] {
        for (int i = 0; i < kPerProducer; ++i) {
          int item = p * kPerProducer + i;
          if (q.Push(item)) {
            accepted[item].store(true);
          } else {
            return;  // closed: everything after would be rejected too
          }
        }
      });
    }
    // Let producers pile up against the tiny capacity, then slam the door
    // mid-traffic.
    std::this_thread::sleep_for(std::chrono::microseconds(50 + 100 * round));
    q.Close();
    for (auto& t : producers) t.join();

    std::vector<int> popped;
    while (auto v = q.Pop()) popped.push_back(*v);
    // Exactly the accepted items, each exactly once.
    std::vector<int> expected;
    for (size_t i = 0; i < accepted.size(); ++i) {
      if (accepted[i].load()) expected.push_back(static_cast<int>(i));
    }
    std::sort(popped.begin(), popped.end());
    EXPECT_EQ(popped, expected) << "round " << round;
    // And the queue is now terminally empty.
    EXPECT_FALSE(q.Pop().has_value());
  }
}

// Consumers blocked in Pop on an EMPTY queue must all wake with nullopt
// when Close() arrives — after first draining anything still queued.
TEST(BoundedQueueTest, BlockedConsumersDrainThenEndOnClose) {
  BoundedQueue<int> q(4);
  ASSERT_TRUE(q.Push(1));
  std::atomic<int> drained{0};
  std::atomic<int> ended{0};
  std::vector<std::thread> consumers;
  for (int c = 0; c < 3; ++c) {
    consumers.emplace_back([&] {
      while (auto v = q.Pop()) drained.fetch_add(*v);
      ended.fetch_add(1);
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  q.Close();
  for (auto& t : consumers) t.join();
  EXPECT_EQ(drained.load(), 1);  // the queued item was not lost to Close
  EXPECT_EQ(ended.load(), 3);    // every blocked consumer ended cleanly
}

// Capacity-1 ping-pong: producer and consumer strictly alternate through
// the single slot; order and completeness must survive the tight handoff.
TEST(BoundedQueueTest, CapacityOnePingPongUnderThreads) {
  BoundedQueue<int> q(1);
  constexpr int kItems = 5000;
  std::vector<int> received;
  received.reserve(kItems);
  std::thread consumer([&] {
    while (auto v = q.Pop()) received.push_back(*v);
  });
  for (int i = 0; i < kItems; ++i) {
    ASSERT_TRUE(q.Push(i));
  }
  q.Close();
  consumer.join();
  ASSERT_EQ(received.size(), static_cast<size_t>(kItems));
  for (int i = 0; i < kItems; ++i) {
    ASSERT_EQ(received[i], i) << "FIFO violated at " << i;
  }
}

// The multi-producer drain guarantee with ALL THREE parties racing: N
// producers hammering Push, a consumer draining concurrently, and Close()
// arriving mid-traffic. Every Push that returned true is popped exactly
// once (across the race and the post-close drain); every Push that
// returned false contributes nothing; pushed_count() equals the number of
// accepted pushes.
TEST(BoundedQueueTest, MultiProducerPushRacesCloseAndDrainingConsumer) {
  for (int round = 0; round < 15; ++round) {
    BoundedQueue<int> q(3);
    constexpr int kProducers = 4;
    constexpr int kPerProducer = 200;
    std::array<std::atomic<bool>, kProducers * kPerProducer> accepted{};
    std::vector<int> drained;
    std::thread consumer([&] {
      while (auto v = q.Pop()) drained.push_back(*v);
    });
    std::vector<std::thread> producers;
    for (int p = 0; p < kProducers; ++p) {
      producers.emplace_back([&q, &accepted, p] {
        for (int i = 0; i < kPerProducer; ++i) {
          int item = p * kPerProducer + i;
          if (!q.Push(item)) return;  // closed: all later pushes fail too
          accepted[item].store(true);
        }
      });
    }
    std::this_thread::sleep_for(std::chrono::microseconds(30 + 70 * round));
    q.Close();
    for (auto& t : producers) t.join();
    consumer.join();  // drains whatever Close left behind, then ends

    std::vector<int> expected;
    for (size_t i = 0; i < accepted.size(); ++i) {
      if (accepted[i].load()) expected.push_back(static_cast<int>(i));
    }
    std::sort(drained.begin(), drained.end());
    EXPECT_EQ(drained, expected) << "round " << round;
    EXPECT_EQ(q.pushed_count(), expected.size()) << "round " << round;
    EXPECT_FALSE(q.Pop().has_value());
  }
}

// Per-producer FIFO survives the race: with a concurrent consumer and
// multiple producers, each producer's accepted items are popped in its own
// push order (the queue may interleave producers, never reorder one).
TEST(BoundedQueueTest, MultiProducerPerProducerOrderPreserved) {
  BoundedQueue<std::pair<int, int>> q(4);
  constexpr int kProducers = 3;
  constexpr int kPerProducer = 400;
  std::vector<std::pair<int, int>> drained;
  std::thread consumer([&] {
    while (auto v = q.Pop()) drained.push_back(*v);
  });
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&q, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        ASSERT_TRUE(q.Push({p, i}));
      }
    });
  }
  for (auto& t : producers) t.join();
  q.Close();
  consumer.join();
  ASSERT_EQ(drained.size(),
            static_cast<size_t>(kProducers * kPerProducer));
  std::array<int, kProducers> next{};
  for (const auto& [p, i] : drained) {
    EXPECT_EQ(i, next[p]) << "producer " << p << " reordered";
    next[p] = i + 1;
  }
}

// Ticket-turnstile admission: a producer that started waiting on a full
// queue first is admitted first.
TEST(BoundedQueueTest, ProducersAdmittedInArrivalOrder) {
  BoundedQueue<int> q(1);
  ASSERT_TRUE(q.Push(0));  // full
  std::thread first([&] { EXPECT_TRUE(q.Push(1)); });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  std::thread second([&] { EXPECT_TRUE(q.Push(2)); });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_EQ(q.Pop().value(), 0);
  EXPECT_EQ(q.Pop().value(), 1);  // the earlier waiter got the slot
  EXPECT_EQ(q.Pop().value(), 2);
  first.join();
  second.join();
}

// -------------------------------------------------------------------------
// BoundedQueueGroup: the epoch-merge primitive (DESIGN.md §9).
// -------------------------------------------------------------------------

TEST(BoundedQueueGroupTest, LaneFifoAndCrossLaneAvailability) {
  BoundedQueueGroup<int> g(3, 8);
  EXPECT_EQ(g.lanes(), 3u);
  ASSERT_TRUE(g.Push(0, 10));
  ASSERT_TRUE(g.Push(0, 11));
  ASSERT_TRUE(g.Push(2, 30));
  EXPECT_EQ(g.size(), 3u);
  EXPECT_EQ(g.lane_size(0), 2u);

  std::vector<std::pair<size_t, int>> popped;
  for (int i = 0; i < 3; ++i) {
    auto p = g.PopReady(nullptr);
    ASSERT_TRUE(p.has_value());
    popped.push_back({p->lane, p->item});
  }
  // Lane FIFO: 10 before 11. Both lanes drained.
  std::vector<int> lane0;
  for (auto& [lane, item] : popped) {
    if (lane == 0) lane0.push_back(item);
  }
  EXPECT_EQ(lane0, (std::vector<int>{10, 11}));
  EXPECT_EQ(g.popped(0), 2u);
  EXPECT_EQ(g.popped(2), 1u);
  EXPECT_EQ(g.size(), 0u);
}

// A capped lane holds its items back while other lanes keep draining; the
// cap lifting releases them — the shard-side barrier in miniature.
TEST(BoundedQueueGroupTest, LimitsHoldBackACappedLane) {
  BoundedQueueGroup<int> g(2, 8);
  ASSERT_TRUE(g.Push(0, 1));
  ASSERT_TRUE(g.Push(0, 2));
  ASSERT_TRUE(g.Push(1, 100));
  uint64_t limits[2] = {1, BoundedQueueGroup<int>::kNoLimit};
  // Under the cap, lane 0 yields exactly one item; lane 1 keeps draining.
  std::vector<int> seen;
  for (int i = 0; i < 2; ++i) {
    auto p = g.PopReady(limits);
    ASSERT_TRUE(p.has_value());
    seen.push_back(p->item);
  }
  std::sort(seen.begin(), seen.end());
  EXPECT_EQ(seen, (std::vector<int>{1, 100}));  // 2 is held back
  EXPECT_EQ(g.lane_size(0), 1u);
  // With both lanes closed, nullopt confirms the cap (not emptiness) was
  // what held item 2 back...
  g.CloseLane(0);
  g.CloseLane(1);
  EXPECT_FALSE(g.PopReady(limits).has_value());
  // ...and lifting the cap releases it, even on a closed lane.
  uint64_t open[2] = {BoundedQueueGroup<int>::kNoLimit,
                      BoundedQueueGroup<int>::kNoLimit};
  auto p = g.PopReady(open);
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->item, 2);
}

TEST(BoundedQueueGroupTest, PopReadyBlocksUntilAnyLanePushes) {
  BoundedQueueGroup<int> g(3, 4);
  std::atomic<bool> got{false};
  std::thread consumer([&] {
    auto p = g.PopReady(nullptr);
    ASSERT_TRUE(p.has_value());
    EXPECT_EQ(p->lane, 1u);
    EXPECT_EQ(p->item, 42);
    got.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_FALSE(got.load());
  ASSERT_TRUE(g.Push(1, 42));
  consumer.join();
  EXPECT_TRUE(got.load());
}

TEST(BoundedQueueGroupTest, EndsOnlyWhenEveryLaneClosedAndDrained) {
  BoundedQueueGroup<int> g(2, 4);
  ASSERT_TRUE(g.Push(0, 7));
  g.CloseLane(0);
  EXPECT_FALSE(g.Push(0, 8));  // closed lane rejects
  std::atomic<bool> ended{false};
  std::thread consumer([&] {
    std::vector<int> items;
    while (auto p = g.PopReady(nullptr)) items.push_back(p->item);
    EXPECT_EQ(items, (std::vector<int>{7, 9}));  // closed lane still drained
    ended.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_FALSE(ended.load());  // lane 1 still open: consumer must wait
  ASSERT_TRUE(g.Push(1, 9));
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  g.CloseLane(1);
  consumer.join();
  EXPECT_TRUE(ended.load());
}

TEST(BoundedQueueGroupTest, LanePushBlocksAtCapacityUntilPop) {
  BoundedQueueGroup<int> g(2, 1);
  ASSERT_TRUE(g.Push(0, 1));
  std::atomic<bool> second_pushed{false};
  std::thread producer([&] {
    EXPECT_TRUE(g.Push(0, 2));  // lane 0 full: blocks
    second_pushed.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(15));
  EXPECT_FALSE(second_pushed.load());
  ASSERT_TRUE(g.Push(1, 100));  // other lane unaffected by lane 0 being full
  auto p = g.PopReady(nullptr);
  ASSERT_TRUE(p.has_value());
  producer.join();  // a pop (either lane order) made room eventually
  EXPECT_TRUE(second_pushed.load());
}

// Multi-producer soak over the group: one producer per lane, caps cycling
// on and off, everything delivered exactly once and in lane order.
TEST(BoundedQueueGroupTest, ConcurrentProducersDrainExactlyOnceInLaneOrder) {
  constexpr size_t kLanes = 4;
  constexpr int kPerLane = 300;
  BoundedQueueGroup<std::pair<size_t, int>> g(kLanes, 4);
  std::vector<std::thread> producers;
  for (size_t lane = 0; lane < kLanes; ++lane) {
    producers.emplace_back([&g, lane] {
      for (int i = 0; i < kPerLane; ++i) {
        ASSERT_TRUE(g.Push(lane, {lane, i}));
      }
    });
  }
  std::array<int, kLanes> next{};
  size_t total = 0;
  std::array<uint64_t, kLanes> limits;
  limits.fill(BoundedQueueGroup<std::pair<size_t, int>>::kNoLimit);
  while (total < kLanes * kPerLane) {
    // Periodically cap a lane at its current position to mimic a barrier,
    // lifting the caps whenever every lane still owing items is capped
    // (otherwise PopReady would wait forever on drained-but-open lanes).
    bool uncapped_lane_owes = false;
    for (size_t lane = 0; lane < kLanes; ++lane) {
      constexpr auto kNoLimit =
          BoundedQueueGroup<std::pair<size_t, int>>::kNoLimit;
      if (limits[lane] == kNoLimit && next[lane] < kPerLane) {
        uncapped_lane_owes = true;
      }
    }
    if (!uncapped_lane_owes) {
      limits.fill(BoundedQueueGroup<std::pair<size_t, int>>::kNoLimit);
    }
    auto p = g.PopReady(limits.data());
    if (!p.has_value()) {
      // Only possible when every open lane is capped; lift and continue.
      limits.fill(BoundedQueueGroup<std::pair<size_t, int>>::kNoLimit);
      continue;
    }
    const auto& [lane, i] = p->item;
    ASSERT_EQ(lane, p->lane);
    ASSERT_EQ(i, next[lane]) << "lane " << lane << " reordered";
    ++next[lane];
    ++total;
    if (total % 97 == 0) limits[p->lane] = g.popped(p->lane);
    if (total % 193 == 0) {
      limits.fill(BoundedQueueGroup<std::pair<size_t, int>>::kNoLimit);
    }
  }
  for (auto& t : producers) t.join();
  for (size_t lane = 0; lane < kLanes; ++lane) g.CloseLane(lane);
  EXPECT_FALSE(g.PopReady(nullptr).has_value());
  EXPECT_EQ(g.size(), 0u);
}

}  // namespace
}  // namespace vitex::service
