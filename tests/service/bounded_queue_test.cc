#include "service/bounded_queue.h"

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

namespace vitex::service {
namespace {

TEST(BoundedQueueTest, FifoOrder) {
  BoundedQueue<int> q(8);
  for (int i = 0; i < 5; ++i) EXPECT_TRUE(q.Push(i));
  EXPECT_EQ(q.size(), 5u);
  for (int i = 0; i < 5; ++i) {
    auto v = q.Pop();
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, i);
  }
  EXPECT_EQ(q.size(), 0u);
}

TEST(BoundedQueueTest, CapacityClampedToOne) {
  BoundedQueue<int> q(0);
  EXPECT_EQ(q.capacity(), 1u);
}

TEST(BoundedQueueTest, CloseDrainsPendingThenEnds) {
  BoundedQueue<std::string> q(4);
  EXPECT_TRUE(q.Push("a"));
  EXPECT_TRUE(q.Push("b"));
  q.Close();
  EXPECT_FALSE(q.Push("c"));  // closed: rejected
  auto a = q.Pop();
  auto b = q.Pop();
  ASSERT_TRUE(a && b);  // already-queued items still drain
  EXPECT_EQ(*a, "a");
  EXPECT_EQ(*b, "b");
  EXPECT_FALSE(q.Pop().has_value());  // drained + closed
}

TEST(BoundedQueueTest, PushBlocksUntilPopMakesRoom) {
  BoundedQueue<int> q(1);
  ASSERT_TRUE(q.Push(1));
  std::atomic<bool> second_pushed{false};
  std::thread producer([&] {
    EXPECT_TRUE(q.Push(2));  // blocks: queue is full
    second_pushed.store(true);
  });
  // The producer cannot complete until we pop.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(second_pushed.load());
  EXPECT_EQ(q.Pop().value(), 1);
  producer.join();
  EXPECT_TRUE(second_pushed.load());
  EXPECT_EQ(q.Pop().value(), 2);
}

TEST(BoundedQueueTest, CloseWakesBlockedProducer) {
  BoundedQueue<int> q(1);
  ASSERT_TRUE(q.Push(1));
  std::thread producer([&] { EXPECT_FALSE(q.Push(2)); });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  q.Close();
  producer.join();
}

TEST(BoundedQueueTest, ManyProducersManyConsumers) {
  BoundedQueue<int> q(16);
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 500;
  std::atomic<long> sum{0};
  std::atomic<int> popped{0};
  std::vector<std::thread> threads;
  for (int p = 0; p < kProducers; ++p) {
    threads.emplace_back([&q, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        ASSERT_TRUE(q.Push(p * kPerProducer + i));
      }
    });
  }
  for (int c = 0; c < 3; ++c) {
    threads.emplace_back([&] {
      while (auto v = q.Pop()) {
        sum.fetch_add(*v);
        popped.fetch_add(1);
      }
    });
  }
  for (int p = 0; p < kProducers; ++p) threads[p].join();
  q.Close();
  for (size_t i = kProducers; i < threads.size(); ++i) threads[i].join();
  const long n = kProducers * kPerProducer;
  EXPECT_EQ(popped.load(), n);
  EXPECT_EQ(sum.load(), n * (n - 1) / 2);
}

}  // namespace
}  // namespace vitex::service
