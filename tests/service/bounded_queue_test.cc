#include "service/bounded_queue.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <atomic>
#include <string>
#include <thread>
#include <vector>

namespace vitex::service {
namespace {

TEST(BoundedQueueTest, FifoOrder) {
  BoundedQueue<int> q(8);
  for (int i = 0; i < 5; ++i) EXPECT_TRUE(q.Push(i));
  EXPECT_EQ(q.size(), 5u);
  for (int i = 0; i < 5; ++i) {
    auto v = q.Pop();
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, i);
  }
  EXPECT_EQ(q.size(), 0u);
}

TEST(BoundedQueueTest, CapacityClampedToOne) {
  BoundedQueue<int> q(0);
  EXPECT_EQ(q.capacity(), 1u);
}

TEST(BoundedQueueTest, CloseDrainsPendingThenEnds) {
  BoundedQueue<std::string> q(4);
  EXPECT_TRUE(q.Push("a"));
  EXPECT_TRUE(q.Push("b"));
  q.Close();
  EXPECT_FALSE(q.Push("c"));  // closed: rejected
  auto a = q.Pop();
  auto b = q.Pop();
  ASSERT_TRUE(a && b);  // already-queued items still drain
  EXPECT_EQ(*a, "a");
  EXPECT_EQ(*b, "b");
  EXPECT_FALSE(q.Pop().has_value());  // drained + closed
}

TEST(BoundedQueueTest, PushBlocksUntilPopMakesRoom) {
  BoundedQueue<int> q(1);
  ASSERT_TRUE(q.Push(1));
  std::atomic<bool> second_pushed{false};
  std::thread producer([&] {
    EXPECT_TRUE(q.Push(2));  // blocks: queue is full
    second_pushed.store(true);
  });
  // The producer cannot complete until we pop.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(second_pushed.load());
  EXPECT_EQ(q.Pop().value(), 1);
  producer.join();
  EXPECT_TRUE(second_pushed.load());
  EXPECT_EQ(q.Pop().value(), 2);
}

TEST(BoundedQueueTest, CloseWakesBlockedProducer) {
  BoundedQueue<int> q(1);
  ASSERT_TRUE(q.Push(1));
  std::thread producer([&] { EXPECT_FALSE(q.Push(2)); });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  q.Close();
  producer.join();
}

TEST(BoundedQueueTest, ManyProducersManyConsumers) {
  BoundedQueue<int> q(16);
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 500;
  std::atomic<long> sum{0};
  std::atomic<int> popped{0};
  std::vector<std::thread> threads;
  for (int p = 0; p < kProducers; ++p) {
    threads.emplace_back([&q, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        ASSERT_TRUE(q.Push(p * kPerProducer + i));
      }
    });
  }
  for (int c = 0; c < 3; ++c) {
    threads.emplace_back([&] {
      while (auto v = q.Pop()) {
        sum.fetch_add(*v);
        popped.fetch_add(1);
      }
    });
  }
  for (int p = 0; p < kProducers; ++p) threads[p].join();
  q.Close();
  for (size_t i = kProducers; i < threads.size(); ++i) threads[i].join();
  const long n = kProducers * kPerProducer;
  EXPECT_EQ(popped.load(), n);
  EXPECT_EQ(sum.load(), n * (n - 1) / 2);
}

// The drain guarantee under a shutdown race: producers blocked in Push on a
// FULL queue race Close(). Every Push that returned true must be popped
// exactly once; every Push that returned false must never appear. No item
// lost, none duplicated.
TEST(BoundedQueueTest, PushRacingCloseWhileFullLosesNothing) {
  for (int round = 0; round < 20; ++round) {
    BoundedQueue<int> q(2);
    constexpr int kProducers = 4;
    constexpr int kPerProducer = 50;
    std::array<std::atomic<bool>, kProducers * kPerProducer> accepted{};
    std::vector<std::thread> producers;
    for (int p = 0; p < kProducers; ++p) {
      producers.emplace_back([&q, &accepted, p] {
        for (int i = 0; i < kPerProducer; ++i) {
          int item = p * kPerProducer + i;
          if (q.Push(item)) {
            accepted[item].store(true);
          } else {
            return;  // closed: everything after would be rejected too
          }
        }
      });
    }
    // Let producers pile up against the tiny capacity, then slam the door
    // mid-traffic.
    std::this_thread::sleep_for(std::chrono::microseconds(50 + 100 * round));
    q.Close();
    for (auto& t : producers) t.join();

    std::vector<int> popped;
    while (auto v = q.Pop()) popped.push_back(*v);
    // Exactly the accepted items, each exactly once.
    std::vector<int> expected;
    for (size_t i = 0; i < accepted.size(); ++i) {
      if (accepted[i].load()) expected.push_back(static_cast<int>(i));
    }
    std::sort(popped.begin(), popped.end());
    EXPECT_EQ(popped, expected) << "round " << round;
    // And the queue is now terminally empty.
    EXPECT_FALSE(q.Pop().has_value());
  }
}

// Consumers blocked in Pop on an EMPTY queue must all wake with nullopt
// when Close() arrives — after first draining anything still queued.
TEST(BoundedQueueTest, BlockedConsumersDrainThenEndOnClose) {
  BoundedQueue<int> q(4);
  ASSERT_TRUE(q.Push(1));
  std::atomic<int> drained{0};
  std::atomic<int> ended{0};
  std::vector<std::thread> consumers;
  for (int c = 0; c < 3; ++c) {
    consumers.emplace_back([&] {
      while (auto v = q.Pop()) drained.fetch_add(*v);
      ended.fetch_add(1);
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  q.Close();
  for (auto& t : consumers) t.join();
  EXPECT_EQ(drained.load(), 1);  // the queued item was not lost to Close
  EXPECT_EQ(ended.load(), 3);    // every blocked consumer ended cleanly
}

// Capacity-1 ping-pong: producer and consumer strictly alternate through
// the single slot; order and completeness must survive the tight handoff.
TEST(BoundedQueueTest, CapacityOnePingPongUnderThreads) {
  BoundedQueue<int> q(1);
  constexpr int kItems = 5000;
  std::vector<int> received;
  received.reserve(kItems);
  std::thread consumer([&] {
    while (auto v = q.Pop()) received.push_back(*v);
  });
  for (int i = 0; i < kItems; ++i) {
    ASSERT_TRUE(q.Push(i));
  }
  q.Close();
  consumer.join();
  ASSERT_EQ(received.size(), static_cast<size_t>(kItems));
  for (int i = 0; i < kItems; ++i) {
    ASSERT_EQ(received[i], i) << "FIFO violated at " << i;
  }
}

}  // namespace
}  // namespace vitex::service
