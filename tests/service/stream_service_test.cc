#include "service/stream_service.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "common/random.h"
#include "twigm/multi_query.h"

namespace vitex::service {
namespace {

// A small news-wire document cycling over `tags` distinct item tags.
std::string MakeDoc(int tags, int items, int salt) {
  std::string doc = "<feed>";
  for (int i = 0; i < items; ++i) {
    int tag = (i + salt) % tags;
    doc += "<item" + std::to_string(tag) + " id=\"d" + std::to_string(salt) +
           "i" + std::to_string(i) + "\"><val>v" + std::to_string(salt) +
           "_" + std::to_string(i) + "</val></item" + std::to_string(tag) +
           ">";
  }
  doc += "</feed>";
  return doc;
}

std::vector<std::string> SortedFragments(std::vector<Delivery> deliveries) {
  std::vector<std::string> out;
  out.reserve(deliveries.size());
  for (auto& d : deliveries) out.push_back(std::move(d.fragment));
  std::sort(out.begin(), out.end());
  return out;
}

TEST(StreamServiceTest, DeliveriesMatchDirectEngine) {
  const std::vector<std::string> queries = {
      "//item0/val/text()", "//item1/@id", "//item2[val]/val/text()",
      "//*/val/text()",     "//feed//item3"};
  const std::vector<std::string> docs = {MakeDoc(5, 9, 0), MakeDoc(5, 7, 1),
                                         MakeDoc(5, 12, 2)};

  // Reference: one single-threaded engine over the same documents.
  twigm::MultiQueryEngine reference;
  std::vector<twigm::VectorResultCollector> expected(queries.size());
  for (size_t q = 0; q < queries.size(); ++q) {
    ASSERT_TRUE(reference.AddQuery(queries[q], &expected[q]).ok());
  }
  for (const std::string& doc : docs) {
    ASSERT_TRUE(reference.RunString(doc).ok());
    reference.ResetStream();
  }

  for (size_t shard_count : {1, 2, 4}) {
    StreamServiceOptions options;
    options.shard_count = shard_count;
    StreamService service(options);
    std::vector<SubscriptionId> subs;
    for (const std::string& q : queries) {
      auto id = service.Subscribe(q);
      ASSERT_TRUE(id.ok()) << q << ": " << id.status();
      subs.push_back(id.value());
    }
    for (const std::string& doc : docs) {
      ASSERT_TRUE(service.Publish(doc).ok());
    }
    ASSERT_TRUE(service.Flush().ok());
    for (size_t q = 0; q < queries.size(); ++q) {
      auto drained = service.Drain(subs[q]);
      ASSERT_TRUE(drained.ok());
      std::vector<std::string> want;
      for (const auto& e : expected[q].results()) want.push_back(e.fragment);
      std::sort(want.begin(), want.end());
      EXPECT_EQ(SortedFragments(std::move(drained).value()), want)
          << "query " << queries[q] << " shards=" << shard_count;
    }
    EXPECT_TRUE(service.Stop().ok());
  }
}

TEST(StreamServiceTest, SubscribeAppliesAtDocumentBoundary) {
  StreamServiceOptions options;
  options.shard_count = 2;
  StreamService service(options);
  ASSERT_TRUE(service.Publish(MakeDoc(2, 4, 0)).ok());
  ASSERT_TRUE(service.Flush().ok());

  // Joined after the first document: must see only the later ones.
  auto late = service.Subscribe("//item0/@id");
  ASSERT_TRUE(late.ok());
  ASSERT_TRUE(service.Publish(MakeDoc(2, 4, 7)).ok());
  ASSERT_TRUE(service.Flush().ok());

  auto drained = service.Drain(late.value());
  ASSERT_TRUE(drained.ok());
  ASSERT_FALSE(drained->empty());
  for (const Delivery& d : drained.value()) {
    EXPECT_EQ(d.fragment.substr(0, 2), "d7")
        << "saw a result from a document published before the subscribe: "
        << d.fragment;
  }
}

TEST(StreamServiceTest, UnsubscribeStopsDeliveriesAndInvalidatesId) {
  StreamService service;
  auto id = service.Subscribe("//item0/val/text()");
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(service.Publish(MakeDoc(1, 3, 0)).ok());
  ASSERT_TRUE(service.Flush().ok());
  auto first = service.Drain(id.value());
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(first->size(), 3u);

  ASSERT_TRUE(service.Unsubscribe(id.value()).ok());
  EXPECT_TRUE(service.Drain(id.value()).status().IsInvalidArgument());
  EXPECT_TRUE(service.Unsubscribe(id.value()).IsInvalidArgument());
  ASSERT_TRUE(service.Publish(MakeDoc(1, 3, 1)).ok());
  EXPECT_TRUE(service.Flush().ok());  // machine is gone; nothing crashes
}

TEST(StreamServiceTest, InvalidQueryRejectedSynchronously) {
  StreamService service;
  EXPECT_FALSE(service.Subscribe("][not-xpath").ok());
  EXPECT_FALSE(service.Subscribe("//a[").ok());
  EXPECT_EQ(service.stats().active_subscriptions, 0u);
}

TEST(StreamServiceTest, MalformedDocumentRejectedNotFatal) {
  StreamService service;
  auto id = service.Subscribe("//a/text()");
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(service.Publish("<a>unclosed").ok());   // accepted async...
  ASSERT_TRUE(service.Publish("<a>good</a>").ok());
  ASSERT_TRUE(service.Flush().ok());                  // ...rejected on ingest
  ServiceStats stats = service.stats();
  EXPECT_EQ(stats.documents_rejected, 1u);
  EXPECT_EQ(stats.documents_processed, 1u);
  auto drained = service.Drain(id.value());
  ASSERT_TRUE(drained.ok());
  ASSERT_EQ(drained->size(), 1u);
  EXPECT_EQ(drained->front().fragment, "good");
}

TEST(StreamServiceTest, BackpressureWithTinyQueues) {
  StreamServiceOptions options;
  options.shard_count = 3;
  options.queue_capacity = 1;  // every hop backpressures
  StreamService service(options);
  auto id = service.Subscribe("//item0/val/text()");
  ASSERT_TRUE(id.ok());
  constexpr int kDocs = 50;
  for (int i = 0; i < kDocs; ++i) {
    ASSERT_TRUE(service.Publish(MakeDoc(4, 6, i)).ok());
  }
  ASSERT_TRUE(service.Flush().ok());
  ServiceStats stats = service.stats();
  EXPECT_EQ(stats.documents_processed, static_cast<uint64_t>(kDocs));
  EXPECT_EQ(stats.ingest_queue_depth, 0u);
  for (const auto& shard : stats.shards) EXPECT_EQ(shard.queue_depth, 0u);
}

// The TSAN acceptance scenario: subscriptions churn on several threads
// while documents are being fed. The stable subscriber (installed before
// any publish) must still see every matching document exactly once.
TEST(StreamServiceTest, ConcurrentSubscribeUnsubscribeWhilePublishing) {
  StreamServiceOptions options;
  options.shard_count = 4;
  options.queue_capacity = 8;
  StreamService service(options);

  auto stable = service.Subscribe("//item0/val/text()");
  ASSERT_TRUE(stable.ok());
  ASSERT_TRUE(service.Flush().ok());  // stable machine installed

  constexpr int kDocs = 60;
  constexpr int kChurners = 3;
  std::vector<std::string> docs;
  size_t expected = 0;  // one <val> text result per <item0 ...> element
  for (int i = 0; i < kDocs; ++i) {
    docs.push_back(MakeDoc(6, 8, i));
    for (size_t pos = docs.back().find("<item0 "); pos != std::string::npos;
         pos = docs.back().find("<item0 ", pos + 1)) {
      ++expected;
    }
  }
  std::atomic<bool> publishing_done{false};
  std::thread publisher([&] {
    for (const std::string& doc : docs) {
      ASSERT_TRUE(service.Publish(doc).ok());
    }
    publishing_done.store(true);
  });
  std::vector<std::thread> churners;
  for (int c = 0; c < kChurners; ++c) {
    churners.emplace_back([&service, &publishing_done, c] {
      int made = 0;
      while (!publishing_done.load() || made < 5) {
        auto id = service.Subscribe("//item" + std::to_string(1 + c) +
                                    "[val]/@id");
        ASSERT_TRUE(id.ok());
        ++made;
        (void)service.Drain(id.value());
        ASSERT_TRUE(service.Unsubscribe(id.value()).ok());
      }
    });
  }
  publisher.join();
  for (auto& t : churners) t.join();
  ASSERT_TRUE(service.Flush().ok());

  auto drained = service.Drain(stable.value());
  ASSERT_TRUE(drained.ok());
  EXPECT_EQ(drained->size(), expected);
  ServiceStats stats = service.stats();
  EXPECT_EQ(stats.documents_processed, static_cast<uint64_t>(kDocs));
  EXPECT_EQ(stats.active_subscriptions, 1u);
  EXPECT_TRUE(service.Stop().ok());
}

TEST(StreamServiceTest, StatsReportScalePerShard) {
  StreamServiceOptions options;
  options.shard_count = 2;
  StreamService service(options);
  auto a = service.Subscribe("//item0");
  auto b = service.Subscribe("//item1/val/text()");
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_TRUE(service.Publish(MakeDoc(2, 6, 0)).ok());
  ASSERT_TRUE(service.Flush().ok());
  ServiceStats stats = service.stats();
  EXPECT_EQ(stats.documents_published, 1u);
  EXPECT_EQ(stats.documents_processed, 1u);
  EXPECT_GT(stats.events_parsed, 0u);
  // Parse-once fan-out: every shard replays the full event stream.
  EXPECT_EQ(stats.events_replayed, stats.events_parsed * 2);
  EXPECT_EQ(stats.active_subscriptions, 2u);
  EXPECT_GT(stats.results_delivered, 0u);
  EXPECT_GT(stats.uptime_seconds, 0.0);
  ASSERT_EQ(stats.shards.size(), 2u);
  size_t live = 0;
  uint64_t dispatched = 0;
  for (const auto& shard : stats.shards) {
    live += shard.live_queries;
    dispatched += shard.dispatch.start_events;
    EXPECT_EQ(shard.documents, 1u);
  }
  EXPECT_EQ(live, 2u);
  EXPECT_GT(dispatched, 0u);
}

// Shared-plan churn through the full service stack: subscriptions drawn
// from a few skeletons (each shard's engine hash-conses them into shared
// machines), randomly unsubscribed and re-subscribed at epoch boundaries.
// Survivors must deliver byte-what a fresh engine with only the survivors
// delivers — i.e. subscribe/unsubscribe churn keeps every shard's plan
// cache (group masks, bindings, refcounts) incrementally correct.
TEST(StreamServiceTest, SharedSkeletonSubscriptionChurn) {
  auto skeleton_query = [](int skeleton, int literal) {
    std::string lit = "'w" + std::to_string(literal) + "'";
    switch (skeleton) {
      case 0:
        return "//item0[val = " + lit + "]";
      case 1:
        return "//item1[@id = " + lit + "]/val/text()";
      default:
        return "//feed//item2[not(val = " + lit + ")]/@id";
    }
  };
  auto make_doc = [](int salt) {
    std::string doc = "<feed>";
    for (int i = 0; i < 15; ++i) {
      int tag = i % 3;
      doc += "<item" + std::to_string(tag) + " id=\"w" +
             std::to_string((i + salt) % 6) + "\"><val>w" +
             std::to_string((i * 2 + salt) % 6) + "</val></item" +
             std::to_string(tag) + ">";
    }
    return doc + "</feed>";
  };

  vitex::Random rng(77);
  for (size_t shard_count : {1, 3}) {
    StreamServiceOptions options;
    options.shard_count = shard_count;
    StreamService service(options);

    struct Sub {
      SubscriptionId id;
      std::string query;
      bool live = true;
    };
    std::vector<Sub> subs;
    for (int k = 0; k < 3; ++k) {
      for (int j = 0; j < 6; ++j) {
        std::string q = skeleton_query(k, j);
        auto id = service.Subscribe(q);
        ASSERT_TRUE(id.ok()) << q;
        subs.push_back(Sub{id.value(), q, true});
      }
    }

    // Epoch 1: a document everyone sees; drain it away.
    ASSERT_TRUE(service.Publish(make_doc(0)).ok());
    ASSERT_TRUE(service.Flush().ok());
    for (Sub& s : subs) ASSERT_TRUE(service.Drain(s.id).ok());

    // Every shard hash-conses its partition: 18 subscriptions over 3
    // skeletons run on at most 3 plan machines per shard.
    ServiceStats stats = service.stats();
    EXPECT_EQ(stats.active_subscriptions, 18u);
    EXPECT_GE(stats.active_plan_machines, 1u);
    EXPECT_LE(stats.active_plan_machines, 3 * shard_count);

    // Churn: random unsubscribes, plus fresh literal variants that re-join
    // the surviving plans.
    for (Sub& s : subs) {
      if (rng.OneIn(0.4)) {
        ASSERT_TRUE(service.Unsubscribe(s.id).ok());
        s.live = false;
      }
    }
    for (int j = 6; j < 9; ++j) {
      std::string q = skeleton_query(j % 3, j);
      auto id = service.Subscribe(q);
      ASSERT_TRUE(id.ok()) << q;
      subs.push_back(Sub{id.value(), q, true});
    }

    // Epoch 2: only survivors + latecomers see this document.
    std::string doc2 = make_doc(1);
    ASSERT_TRUE(service.Publish(doc2).ok());
    ASSERT_TRUE(service.Flush().ok());

    // Reference: a fresh single-threaded engine with exactly the live set.
    twigm::MultiQueryEngine reference;
    std::vector<twigm::VectorResultCollector> expected(subs.size());
    for (size_t i = 0; i < subs.size(); ++i) {
      if (!subs[i].live) continue;
      ASSERT_TRUE(reference.AddQuery(subs[i].query, &expected[i]).ok());
    }
    ASSERT_TRUE(reference.RunString(doc2).ok());

    for (size_t i = 0; i < subs.size(); ++i) {
      if (!subs[i].live) {
        EXPECT_FALSE(service.Drain(subs[i].id).ok())
            << "unsubscribed id still drains: " << subs[i].query;
        continue;
      }
      auto drained = service.Drain(subs[i].id);
      ASSERT_TRUE(drained.ok());
      std::vector<std::string> want;
      for (const auto& e : expected[i].results()) want.push_back(e.fragment);
      std::sort(want.begin(), want.end());
      EXPECT_EQ(SortedFragments(std::move(drained).value()), want)
          << "query " << subs[i].query << " shards=" << shard_count;
    }
    EXPECT_TRUE(service.Stop().ok());
  }
}

// -------------------------------------------------------------------------
// Multi-stream ingest (DESIGN.md §9).
// -------------------------------------------------------------------------

TEST(StreamServiceTest, MultiStreamDeliveriesMatchDirectEngine) {
  const std::vector<std::string> queries = {
      "//item0/val/text()", "//item1/@id", "//item2[val]/val/text()",
      "//*/val/text()",     "//feed//item3"};
  std::vector<std::string> docs;
  for (int i = 0; i < 12; ++i) docs.push_back(MakeDoc(5, 5 + i % 7, i));

  twigm::MultiQueryEngine reference;
  std::vector<twigm::VectorResultCollector> expected(queries.size());
  for (size_t q = 0; q < queries.size(); ++q) {
    ASSERT_TRUE(reference.AddQuery(queries[q], &expected[q]).ok());
  }
  for (const std::string& doc : docs) {
    ASSERT_TRUE(reference.RunString(doc).ok());
    reference.ResetStream();
  }

  for (size_t stream_count : {1, 2, 4}) {
    for (size_t shard_count : {1, 3}) {
      StreamServiceOptions options;
      options.shard_count = shard_count;
      options.stream_count = stream_count;
      StreamService service(options);
      ASSERT_EQ(service.stream_count(), stream_count);
      std::vector<SubscriptionId> subs;
      for (const std::string& q : queries) {
        auto id = service.Subscribe(q);
        ASSERT_TRUE(id.ok()) << q << ": " << id.status();
        subs.push_back(id.value());
      }
      for (const std::string& doc : docs) {
        ASSERT_TRUE(service.Publish(doc).ok());  // round-robin over streams
      }
      ASSERT_TRUE(service.Flush().ok());
      for (size_t q = 0; q < queries.size(); ++q) {
        auto drained = service.Drain(subs[q]);
        ASSERT_TRUE(drained.ok());
        std::vector<std::string> want;
        for (const auto& e : expected[q].results()) {
          want.push_back(e.fragment);
        }
        std::sort(want.begin(), want.end());
        EXPECT_EQ(SortedFragments(std::move(drained).value()), want)
            << "query " << queries[q] << " streams=" << stream_count
            << " shards=" << shard_count;
      }
      EXPECT_TRUE(service.Stop().ok());
    }
  }
}

TEST(StreamServiceTest, PublishToStreamValidatesIndex) {
  StreamServiceOptions options;
  options.stream_count = 2;
  StreamService service(options);
  EXPECT_TRUE(service.PublishToStream(1, "<a/>").ok());
  EXPECT_TRUE(
      service.PublishToStream(2, "<a/>").IsInvalidArgument());
}

// Within one stream, deliveries preserve publish order even while another
// stream interleaves its own documents arbitrarily.
TEST(StreamServiceTest, PerStreamOrderIsPreserved) {
  StreamServiceOptions options;
  options.shard_count = 2;
  options.stream_count = 2;
  options.queue_capacity = 4;
  StreamService service(options);
  auto id = service.Subscribe("//doc/text()");
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(service.Flush().ok());

  constexpr int kPerStream = 40;
  std::vector<std::thread> publishers;
  for (int s = 0; s < 2; ++s) {
    publishers.emplace_back([&service, s] {
      for (int i = 0; i < kPerStream; ++i) {
        std::string doc = "<doc>s" + std::to_string(s) + "_" +
                          std::to_string(i) + "</doc>";
        ASSERT_TRUE(service.PublishToStream(s, std::move(doc)).ok());
      }
    });
  }
  for (auto& t : publishers) t.join();
  ASSERT_TRUE(service.Flush().ok());

  auto drained = service.Drain(id.value());
  ASSERT_TRUE(drained.ok());
  ASSERT_EQ(drained->size(), 2u * kPerStream);
  // Filter the delivery sequence per stream: each must be 0,1,2,... even
  // though the two streams interleave arbitrarily.
  for (int s = 0; s < 2; ++s) {
    const std::string prefix = "s" + std::to_string(s) + "_";
    int next = 0;
    for (const Delivery& d : drained.value()) {
      if (d.fragment.compare(0, prefix.size(), prefix) != 0) continue;
      EXPECT_EQ(d.fragment, prefix + std::to_string(next))
          << "stream " << s << " out of order at position " << next;
      ++next;
    }
    EXPECT_EQ(next, kPerStream);
  }
}

// The epoch-boundary guarantee with real multi-stream traffic: every
// document whose Publish RETURNED before Subscribe was called is invisible
// to the subscription; every document published after Subscribe RETURNED is
// seen. (The markers must cut all four stream queues consistently.)
TEST(StreamServiceTest, SubscribeCutsAllStreamsAtOneEpoch) {
  StreamServiceOptions options;
  options.shard_count = 2;
  options.stream_count = 4;
  StreamService service(options);

  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(service.Publish("<doc><pre>p" + std::to_string(i) +
                                "</pre></doc>")
                    .ok());
  }
  auto late = service.Subscribe("//doc/*/text()");
  ASSERT_TRUE(late.ok());
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(service.Publish("<doc><post>q" + std::to_string(i) +
                                "</post></doc>")
                    .ok());
  }
  ASSERT_TRUE(service.Flush().ok());

  auto drained = service.Drain(late.value());
  ASSERT_TRUE(drained.ok());
  EXPECT_EQ(drained->size(), 20u);  // all post-subscribe documents...
  for (const Delivery& d : drained.value()) {
    EXPECT_EQ(d.fragment[0], 'q')  // ...and nothing pre-subscribe
        << "saw a pre-subscribe document: " << d.fragment;
  }
}

// A malformed document on one stream must not desynchronize the epoch
// merge: markers are positions in the queue, not document counts.
TEST(StreamServiceTest, RejectedDocumentDoesNotWedgeTheEpochMerge) {
  StreamServiceOptions options;
  options.shard_count = 2;
  options.stream_count = 3;
  StreamService service(options);
  ASSERT_TRUE(service.PublishToStream(0, "<broken><nope").ok());
  ASSERT_TRUE(service.PublishToStream(1, "<a>first</a>").ok());
  auto id = service.Subscribe("//a/text()");
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(service.PublishToStream(0, "<a>second</a>").ok());
  ASSERT_TRUE(service.PublishToStream(2, "<broken too").ok());
  ASSERT_TRUE(service.PublishToStream(2, "<a>third</a>").ok());
  ASSERT_TRUE(service.Flush().ok());
  auto drained = service.Drain(id.value());
  ASSERT_TRUE(drained.ok());
  EXPECT_EQ(SortedFragments(std::move(drained).value()),
            (std::vector<std::string>{"second", "third"}));
  ServiceStats stats = service.stats();
  EXPECT_EQ(stats.documents_rejected, 2u);
  EXPECT_EQ(stats.documents_processed, 3u);
}

TEST(StreamServiceTest, PerStreamStatsGauges) {
  StreamServiceOptions options;
  options.shard_count = 2;
  options.stream_count = 3;
  StreamService service(options);
  ASSERT_TRUE(service.PublishToStream(0, MakeDoc(2, 4, 0)).ok());
  ASSERT_TRUE(service.PublishToStream(0, MakeDoc(2, 4, 1)).ok());
  ASSERT_TRUE(service.PublishToStream(2, "<oops").ok());
  ASSERT_TRUE(service.Flush().ok());
  ServiceStats stats = service.stats();
  ASSERT_EQ(stats.streams.size(), 3u);
  EXPECT_EQ(stats.streams[0].documents_published, 2u);
  EXPECT_EQ(stats.streams[0].documents_parsed, 2u);
  EXPECT_EQ(stats.streams[0].documents_rejected, 0u);
  EXPECT_GT(stats.streams[0].events_parsed, 0u);
  EXPECT_EQ(stats.streams[1].documents_published, 0u);
  EXPECT_EQ(stats.streams[2].documents_published, 1u);
  EXPECT_EQ(stats.streams[2].documents_parsed, 0u);
  EXPECT_EQ(stats.streams[2].documents_rejected, 1u);
  EXPECT_EQ(stats.documents_published, 3u);
  EXPECT_EQ(stats.documents_rejected, 1u);
  EXPECT_EQ(stats.events_parsed,
            stats.streams[0].events_parsed + stats.streams[2].events_parsed);
  EXPECT_EQ(stats.ingest_queue_depth, 0u);
}

// The TSAN tentpole scenario: M publisher threads drive M streams
// concurrently while subscriptions churn from other threads. The stable
// subscriber must see every matching document exactly once; the churners
// exercise the freeze/unfreeze + barrier machinery mid-traffic.
TEST(StreamServiceTest, ConcurrentMultiStreamPublishWithChurn) {
  constexpr size_t kStreams = 4;
  StreamServiceOptions options;
  options.shard_count = 3;
  options.stream_count = kStreams;
  options.queue_capacity = 8;
  StreamService service(options);

  auto stable = service.Subscribe("//item0/val/text()");
  ASSERT_TRUE(stable.ok());
  ASSERT_TRUE(service.Flush().ok());  // stable machine installed

  constexpr int kDocsPerStream = 25;
  constexpr int kChurners = 2;
  size_t expected = 0;
  std::vector<std::vector<std::string>> docs(kStreams);
  for (size_t s = 0; s < kStreams; ++s) {
    for (int i = 0; i < kDocsPerStream; ++i) {
      docs[s].push_back(MakeDoc(6, 8, static_cast<int>(s * 100) + i));
      for (size_t pos = docs[s].back().find("<item0 ");
           pos != std::string::npos;
           pos = docs[s].back().find("<item0 ", pos + 1)) {
        ++expected;
      }
    }
  }
  std::atomic<size_t> publishers_done{0};
  std::vector<std::thread> threads;
  for (size_t s = 0; s < kStreams; ++s) {
    threads.emplace_back([&service, &docs, &publishers_done, s] {
      for (const std::string& doc : docs[s]) {
        ASSERT_TRUE(service.PublishToStream(s, doc).ok());
      }
      publishers_done.fetch_add(1);
    });
  }
  for (int c = 0; c < kChurners; ++c) {
    threads.emplace_back([&service, &publishers_done, c] {
      int made = 0;
      while (publishers_done.load() < kStreams || made < 4) {
        auto id = service.Subscribe("//item" + std::to_string(1 + c) +
                                    "[val]/@id");
        ASSERT_TRUE(id.ok());
        ++made;
        (void)service.Drain(id.value());
        ASSERT_TRUE(service.Unsubscribe(id.value()).ok());
      }
    });
  }
  for (auto& t : threads) t.join();
  ASSERT_TRUE(service.Flush().ok());

  auto drained = service.Drain(stable.value());
  ASSERT_TRUE(drained.ok());
  EXPECT_EQ(drained->size(), expected);
  ServiceStats stats = service.stats();
  EXPECT_EQ(stats.documents_processed,
            static_cast<uint64_t>(kStreams * kDocsPerStream));
  EXPECT_EQ(stats.active_subscriptions, 1u);
  EXPECT_TRUE(service.Stop().ok());
}

TEST(StreamServiceTest, StopIsIdempotentAndDrainSurvivesIt) {
  StreamService service;
  auto id = service.Subscribe("//a/text()");
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(service.Publish("<a>x</a>").ok());
  EXPECT_TRUE(service.Stop().ok());   // drains queued work
  EXPECT_TRUE(service.Stop().ok());   // idempotent
  EXPECT_FALSE(service.Publish("<a>y</a>").ok());
  EXPECT_FALSE(service.Subscribe("//b").ok());
  auto drained = service.Drain(id.value());
  ASSERT_TRUE(drained.ok());  // results from before the stop are kept
  ASSERT_EQ(drained->size(), 1u);
  EXPECT_EQ(drained->front().fragment, "x");
}

}  // namespace
}  // namespace vitex::service
