// Randomized differential testing for union queries: the streaming
// UnionEngine vs the set-union of per-branch DOM oracle results.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "baseline/dom_evaluator.h"
#include "common/random.h"
#include "twigm/union_engine.h"
#include "workload/random_generator.h"
#include "xml/dom.h"
#include "xpath/parser.h"
#include "xpath/query.h"

namespace vitex {
namespace {

std::vector<std::string> DomUnion(const std::string& union_query,
                                  const std::string& doc) {
  auto branches = xpath::ParseXPathUnion(union_query);
  EXPECT_TRUE(branches.ok()) << branches.status();
  auto dom = xml::ParseIntoDom(doc);
  EXPECT_TRUE(dom.ok());
  std::vector<const xml::DomNode*> nodes;
  for (const xpath::Path& branch : branches.value()) {
    auto compiled = xpath::Query::Compile(branch, "");
    EXPECT_TRUE(compiled.ok());
    baseline::DomEvaluator eval(&dom.value());
    for (const xml::DomNode* n : eval.Evaluate(compiled.value())) {
      nodes.push_back(n);
    }
  }
  std::sort(nodes.begin(), nodes.end(),
            [](const xml::DomNode* a, const xml::DomNode* b) {
              return a->order < b->order;
            });
  nodes.erase(std::unique(nodes.begin(), nodes.end()), nodes.end());
  std::vector<std::string> out;
  for (const xml::DomNode* n : nodes) {
    if (n->IsAttribute() || n->IsText()) {
      out.emplace_back(n->value);
    } else {
      out.push_back(xml::Document::Serialize(n));
    }
  }
  return out;
}

std::vector<std::string> StreamUnion(const std::string& union_query,
                                     const std::string& doc) {
  twigm::VectorResultCollector results;
  auto engine = twigm::UnionEngine::Create(union_query, &results);
  EXPECT_TRUE(engine.ok()) << union_query << ": " << engine.status();
  Status s = engine->RunString(doc);
  EXPECT_TRUE(s.ok()) << s;
  return results.SortedFragments();
}

class UnionDifferentialTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(UnionDifferentialTest, StreamingUnionMatchesDomUnion) {
  Random rng(GetParam());
  workload::RandomDocOptions doc_options;
  doc_options.max_elements = 70;
  workload::RandomQueryOptions query_options;
  for (int i = 0; i < 12; ++i) {
    std::string doc = workload::GenerateRandomDocument(doc_options, &rng);
    int branches = 2 + static_cast<int>(rng.Uniform(2));
    std::string union_query;
    for (int b = 0; b < branches; ++b) {
      if (b > 0) union_query += " | ";
      union_query += workload::GenerateRandomQuery(query_options, &rng);
    }
    EXPECT_EQ(StreamUnion(union_query, doc), DomUnion(union_query, doc))
        << union_query << "\ndoc: " << doc;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, UnionDifferentialTest,
                         ::testing::Values(21, 22, 23, 24, 25, 26, 27, 28));

TEST(UnionDifferentialTest, IdenticalBranchesCollapse) {
  // p | p must equal p exactly (full dedup).
  Random rng(5150);
  workload::RandomDocOptions doc_options;
  doc_options.max_elements = 60;
  workload::RandomQueryOptions query_options;
  for (int i = 0; i < 10; ++i) {
    std::string doc = workload::GenerateRandomDocument(doc_options, &rng);
    std::string q = workload::GenerateRandomQuery(query_options, &rng);
    auto single = StreamUnion(q, doc);
    auto doubled = StreamUnion(q + " | " + q, doc);
    EXPECT_EQ(single, doubled) << q;
  }
}

}  // namespace
}  // namespace vitex
