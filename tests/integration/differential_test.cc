// Differential testing: TwigM (streaming), the DOM evaluator (random
// access, the §1 non-streaming baseline) and the naive enumeration matcher
// must agree on every (document, query) pair. This is the strongest
// correctness statement in the suite: three independent implementations of
// the fragment's semantics, thousands of randomized cases.

#include <gtest/gtest.h>

#include "baseline/dom_evaluator.h"
#include "baseline/naive_matcher.h"
#include "common/random.h"
#include "twigm/engine.h"
#include "workload/book_generator.h"
#include "workload/random_generator.h"
#include "workload/xmark_generator.h"
#include "xml/dom.h"
#include "xml/sax_parser.h"

namespace vitex {
namespace {

std::vector<std::string> RunTwigM(const std::string& query,
                                  const std::string& doc) {
  twigm::VectorResultCollector results;
  auto engine = twigm::Engine::Create(query, &results);
  EXPECT_TRUE(engine.ok()) << query << ": " << engine.status();
  Status s = engine->RunString(doc);
  EXPECT_TRUE(s.ok()) << s;
  return results.SortedFragments();
}

std::vector<std::string> RunDom(const std::string& query,
                                const std::string& doc) {
  auto r = baseline::EvaluateOnDocument(doc, query);
  EXPECT_TRUE(r.ok()) << query << ": " << r.status();
  return r.ok() ? r.value() : std::vector<std::string>();
}

std::vector<std::string> RunNaive(const std::string& query,
                                  const std::string& doc) {
  auto compiled = xpath::ParseAndCompile(query);
  EXPECT_TRUE(compiled.ok());
  twigm::VectorResultCollector results;
  baseline::NaiveStreamMatcher naive(&compiled.value(), &results);
  Status s = xml::ParseString(doc, &naive);
  EXPECT_TRUE(s.ok()) << s;
  return results.SortedFragments();
}

void ExpectAllAgree(const std::string& query, const std::string& doc) {
  auto twig = RunTwigM(query, doc);
  auto dom = RunDom(query, doc);
  auto naive = RunNaive(query, doc);
  EXPECT_EQ(twig, dom) << "TwigM vs DOM oracle\nquery: " << query
                       << "\ndoc: " << doc;
  EXPECT_EQ(twig, naive) << "TwigM vs naive matcher\nquery: " << query
                         << "\ndoc: " << doc;
}

TEST(DifferentialTest, HandPickedCases) {
  const std::pair<const char*, const char*> cases[] = {
      {"//a", "<a><a/></a>"},
      {"/a/b", "<a><b/><c><b/></c></a>"},
      {"//a[b]//c", "<r><a><c/><b/></a><a><c/></a></r>"},
      {"//a[not(b)]", "<r><a><b/></a><a/></r>"},
      {"//a[b or c]", "<r><a><b/></a><a><c/></a><a><d/></a></r>"},
      {"//a[@x]", "<r><a x=\"1\"/><a/></r>"},
      {"//a[@x = '1']//b", "<r><a x=\"1\"><b/></a><a x=\"2\"><b/></a></r>"},
      {"//a/@x", "<r><a x=\"1\"/><a x=\"2\"/><a/></r>"},
      {"//a//@x", "<r><a x=\"s\"><b x=\"d\"/></a></r>"},
      {"//a/text()", "<r><a>one</a><a><b>two</b></a></r>"},
      {"//a//text()", "<r><a>one<b>two</b></a></r>"},
      {"//a[text() = 'k']", "<r><a>k</a><a>m</a></r>"},
      {"//a[b = 5]", "<r><a><b>5</b></a><a><b>6</b></a></r>"},
      {"//a[b < 10][b > 2]", "<r><a><b>5</b></a><a><b>1</b></a></r>"},
      {"//*[b]", "<r><a><b/></a><c><b/></c><d/></r>"},
      {"//a[.//b]", "<r><a><x><b/></x></a><a/></r>"},
      {"//a[b[c]]", "<r><a><b><c/></b></a><a><b/></a></r>"},
      {"//section[author]//table[position]//cell",
       "<book><section><section><table><cell>A</cell>"
       "<position>p</position></table></section>"
       "<author>x</author></section></book>"},
  };
  for (const auto& [query, doc] : cases) {
    ExpectAllAgree(query, doc);
  }
}

TEST(DifferentialTest, Figure1AllEngines) {
  ExpectAllAgree("//section[author]//table[position]//cell",
                 workload::Figure1Document());
}

// The main randomized differential sweep, parameterized by seed so failures
// name the exact reproducible case.
class RandomDifferentialTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RandomDifferentialTest, EnginesAgreeOnRandomInputs) {
  Random rng(GetParam());
  workload::RandomDocOptions doc_options;
  doc_options.max_elements = 80;
  workload::RandomQueryOptions query_options;
  for (int i = 0; i < 25; ++i) {
    std::string doc = workload::GenerateRandomDocument(doc_options, &rng);
    std::string query = workload::GenerateRandomQuery(query_options, &rng);
    ExpectAllAgree(query, doc);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomDifferentialTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11,
                                           12, 13, 14, 15, 16));

TEST(DifferentialTest, BookWorkload) {
  for (uint64_t seed = 1; seed <= 5; ++seed) {
    workload::BookOptions options;
    options.seed = seed;
    options.section_depth = 4;
    options.table_depth = 3;
    options.chains = 2;
    options.author_probability = 0.5;
    options.position_probability = 0.5;
    auto doc = workload::GenerateBookString(options);
    ASSERT_TRUE(doc.ok());
    for (const char* q :
         {"//section[author]//table[position]//cell", "//section//cell",
          "//table[position]", "//section[author][title]//table"}) {
      ExpectAllAgree(q, doc.value());
    }
  }
}

TEST(DifferentialTest, XmarkWorkloadTwigMvsDom) {
  workload::XmarkOptions options;
  options.items_per_region = 10;
  auto doc = workload::GenerateXmarkString(options);
  ASSERT_TRUE(doc.ok());
  const char* queries[] = {
      "//item[incategory]/name",
      "//item/@id",
      "//open_auction[bidder]/current",
      "//person[profile/income]//@id",
      "//open_auction[initial > 100]/@id",
      "//item[name][description//listitem]",
      "//person[profile[interest]]/name/text()",
  };
  for (const char* q : queries) {
    auto twig = RunTwigM(q, doc.value());
    auto dom = RunDom(q, doc.value());
    EXPECT_EQ(twig, dom) << q;
    // Sanity: these queries should actually select something.
    if (std::string(q) == "//item/@id") {
      EXPECT_EQ(twig.size(), 60u);
    }
  }
}

}  // namespace
}  // namespace vitex
