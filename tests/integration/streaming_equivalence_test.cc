// Streaming-specific properties of the whole pipeline: chunking invariance,
// incremental emission, memory boundedness.

#include <gtest/gtest.h>

#include "common/random.h"
#include "twigm/engine.h"
#include "workload/protein_generator.h"
#include "workload/random_generator.h"
#include "workload/recursive_generator.h"

namespace vitex {
namespace {

std::vector<std::string> RunChunked(const std::string& query,
                                    const std::string& doc,
                                    size_t chunk_size) {
  twigm::VectorResultCollector results;
  auto engine = twigm::Engine::Create(query, &results);
  EXPECT_TRUE(engine.ok()) << engine.status();
  for (size_t i = 0; i < doc.size(); i += chunk_size) {
    Status s = engine->Feed(
        std::string_view(doc).substr(i, std::min(chunk_size, doc.size() - i)));
    EXPECT_TRUE(s.ok()) << s;
  }
  EXPECT_TRUE(engine->Finish().ok());
  return results.SortedFragments();
}

class ChunkInvarianceTest : public ::testing::TestWithParam<size_t> {};

TEST_P(ChunkInvarianceTest, ResultsIndependentOfChunkSize) {
  workload::ProteinOptions options;
  options.entries = 30;
  options.reference_probability = 0.6;
  auto doc = workload::GenerateProteinString(options);
  ASSERT_TRUE(doc.ok());
  const std::string query = "//ProteinEntry[reference]/@id";
  auto whole = RunChunked(query, doc.value(), doc->size());
  EXPECT_GT(whole.size(), 0u);
  EXPECT_EQ(whole, RunChunked(query, doc.value(), GetParam()));
}

INSTANTIATE_TEST_SUITE_P(Sizes, ChunkInvarianceTest,
                         ::testing::Values(1, 7, 64, 1024));

TEST(ChunkInvarianceTest, RandomDocsAndQueries) {
  Random rng(777);
  workload::RandomDocOptions doc_options;
  doc_options.max_elements = 60;
  workload::RandomQueryOptions query_options;
  for (int i = 0; i < 15; ++i) {
    std::string doc = workload::GenerateRandomDocument(doc_options, &rng);
    std::string query = workload::GenerateRandomQuery(query_options, &rng);
    auto whole = RunChunked(query, doc, doc.size());
    for (size_t chunk : {1u, 13u}) {
      EXPECT_EQ(whole, RunChunked(query, doc, chunk))
          << "query " << query << " chunk " << chunk;
    }
  }
}

TEST(IncrementalEmissionTest, ResultsArriveWhileStreaming) {
  // Build a 200-entry feed; after feeding the first half, at least some
  // results must already be out.
  workload::ProteinOptions options;
  options.entries = 200;
  auto doc = workload::GenerateProteinString(options);
  ASSERT_TRUE(doc.ok());
  twigm::VectorResultCollector results;
  auto engine =
      twigm::Engine::Create("//ProteinEntry[reference]/@id", &results);
  ASSERT_TRUE(engine.ok());
  size_t half = doc->size() / 2;
  ASSERT_TRUE(engine->Feed(std::string_view(doc.value()).substr(0, half)).ok());
  size_t after_half = results.size();
  EXPECT_GT(after_half, 0u) << "no incremental output after half the stream";
  ASSERT_TRUE(engine->Feed(std::string_view(doc.value()).substr(half)).ok());
  ASSERT_TRUE(engine->Finish().ok());
  EXPECT_GT(results.size(), after_half);
}

TEST(MemoryBoundednessTest, LiveMemoryIndependentOfStreamLength) {
  // Feature 3 of the paper: memory stays stable as the document grows.
  const char* query = "//ProteinEntry[reference]/@id";
  size_t peaks[2];
  int idx = 0;
  for (uint64_t entries : {200ull, 2000ull}) {
    workload::ProteinOptions options;
    options.entries = entries;
    auto doc = workload::GenerateProteinString(options);
    ASSERT_TRUE(doc.ok());
    twigm::CountingResultHandler results;
    auto engine = twigm::Engine::Create(query, &results);
    ASSERT_TRUE(engine.ok());
    ASSERT_TRUE(engine->RunString(doc.value()).ok());
    peaks[idx++] = engine->machine().memory().peak_bytes();
  }
  // 10x the data must not even double the peak engine memory.
  EXPECT_LT(peaks[1], peaks[0] * 2 + 4096)
      << "peak grew with stream length: " << peaks[0] << " -> " << peaks[1];
}

TEST(MemoryBoundednessTest, RecursionDepthBoundsMemoryNotDataSize) {
  // Width (many spines) must not grow memory; depth may.
  workload::RecursiveOptions narrow;
  narrow.depth = 10;
  narrow.width = 2;
  workload::RecursiveOptions wide = narrow;
  wide.width = 200;
  size_t peak_narrow, peak_wide;
  {
    auto doc = workload::GenerateRecursiveString(narrow);
    ASSERT_TRUE(doc.ok());
    twigm::CountingResultHandler results;
    auto engine =
        twigm::Engine::Create(workload::RecursiveChainQuery(3), &results);
    ASSERT_TRUE(engine.ok());
    ASSERT_TRUE(engine->RunString(doc.value()).ok());
    peak_narrow = engine->machine().memory().peak_bytes();
  }
  {
    auto doc = workload::GenerateRecursiveString(wide);
    ASSERT_TRUE(doc.ok());
    twigm::CountingResultHandler results;
    auto engine =
        twigm::Engine::Create(workload::RecursiveChainQuery(3), &results);
    ASSERT_TRUE(engine.ok());
    ASSERT_TRUE(engine->RunString(doc.value()).ok());
    peak_wide = engine->machine().memory().peak_bytes();
  }
  EXPECT_LT(peak_wide, peak_narrow * 3 + 4096);
}

TEST(SaxVsMachineDepthTest, EngineSeesConsistentDepths) {
  // End-to-end sanity on a document with every construct.
  const char* doc =
      "<?xml version=\"1.0\"?><r><!-- c --><a x=\"1\">t<![CDATA[c]]>"
      "<b/></a></r>";
  twigm::VectorResultCollector results;
  auto engine = twigm::Engine::Create("//a", &results);
  ASSERT_TRUE(engine.ok());
  ASSERT_TRUE(engine->RunString(doc).ok());
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results.results()[0].fragment, "<a x=\"1\">tc<b/></a>");
}

}  // namespace
}  // namespace vitex
