#include "baseline/dom_evaluator.h"

#include <gtest/gtest.h>

namespace vitex::baseline {
namespace {

std::vector<std::string> Eval(std::string_view xml, std::string_view query) {
  auto r = EvaluateOnDocument(xml, query);
  EXPECT_TRUE(r.ok()) << query << ": " << r.status();
  return r.ok() ? r.value() : std::vector<std::string>();
}

TEST(DomEvaluatorTest, SimplePath) {
  auto r = Eval("<a><b/><c><b/></c></a>", "//b");
  EXPECT_EQ(r.size(), 2u);
}

TEST(DomEvaluatorTest, ChildAxisRespected) {
  auto r = Eval("<a><b/><c><b/></c></a>", "/a/b");
  ASSERT_EQ(r.size(), 1u);
  EXPECT_EQ(r[0], "<b/>");
}

TEST(DomEvaluatorTest, ExistencePredicate) {
  auto r = Eval("<r><a><b/></a><a><c/></a></r>", "//a[b]");
  ASSERT_EQ(r.size(), 1u);
  EXPECT_EQ(r[0], "<a><b/></a>");
}

TEST(DomEvaluatorTest, ResultsInDocumentOrderDeduplicated) {
  // c is reachable via both a-ancestors; it must appear once.
  auto r = Eval("<r><a><a><c/></a></a></r>", "//a//c");
  ASSERT_EQ(r.size(), 1u);
}

TEST(DomEvaluatorTest, AttributeResults) {
  auto r = Eval("<r><a id=\"1\"/><a id=\"2\"/></r>", "//a/@id");
  ASSERT_EQ(r.size(), 2u);
  EXPECT_EQ(r[0], "1");
  EXPECT_EQ(r[1], "2");
}

TEST(DomEvaluatorTest, DescendantAttributeSelfOrBelow) {
  auto r = Eval("<r><a id=\"s\"><b id=\"d\"/></a></r>", "//a//@id");
  ASSERT_EQ(r.size(), 2u);
}

TEST(DomEvaluatorTest, TextResults) {
  auto r = Eval("<r><a>x</a><a><b>y</b></a></r>", "//a/text()");
  ASSERT_EQ(r.size(), 1u);
  EXPECT_EQ(r[0], "x");
}

TEST(DomEvaluatorTest, ValuePredicates) {
  const char* doc = "<r><a><p>5</p></a><a><p>15</p></a></r>";
  EXPECT_EQ(Eval(doc, "//a[p > 10]").size(), 1u);
  EXPECT_EQ(Eval(doc, "//a[p = 5]").size(), 1u);
  EXPECT_EQ(Eval(doc, "//a[p = '5']").size(), 1u);
  EXPECT_EQ(Eval(doc, "//a[p < 3]").size(), 0u);
}

TEST(DomEvaluatorTest, BooleanPredicates) {
  const char* doc = "<r><a><b/><c/></a><a><b/></a><a><c/></a><a><d/></a></r>";
  EXPECT_EQ(Eval(doc, "//a[b and c]").size(), 1u);
  EXPECT_EQ(Eval(doc, "//a[b or c]").size(), 3u);
  EXPECT_EQ(Eval(doc, "//a[not(b)]").size(), 2u);
  EXPECT_EQ(Eval(doc, "//a[not(b or c)]").size(), 1u);
}

TEST(DomEvaluatorTest, PaperFigure1) {
  const char* doc =
      "<book><section><section><section><table><table><table>"
      "<cell>A</cell></table></table><position>B</position></table>"
      "</section></section><author>C</author></section></book>";
  auto r = Eval(doc, "//section[author]//table[position]//cell");
  ASSERT_EQ(r.size(), 1u);
  EXPECT_EQ(r[0], "<cell>A</cell>");
}

TEST(DomEvaluatorTest, MemoizationStillCorrectAcrossSharedSubtrees) {
  // The same element is probed for satisfaction through two different
  // ancestors; the memo must return consistent answers.
  const char* doc = "<r><a><a><b><c/></b></a></a></r>";
  auto r = Eval(doc, "//a[b/c]");
  EXPECT_EQ(r.size(), 1u);  // only the inner a has b as a *child*
}

TEST(DomEvaluatorTest, SatChecksBounded) {
  auto doc = xml::ParseIntoDom("<r><a><b/></a><a><b/></a><a><b/></a></r>");
  ASSERT_TRUE(doc.ok());
  auto query = xpath::ParseAndCompile("//a[b]");
  ASSERT_TRUE(query.ok());
  DomEvaluator eval(&doc.value());
  auto nodes = eval.Evaluate(query.value());
  EXPECT_EQ(nodes.size(), 3u);
  // With memoization, checks are at most nodes × query size.
  EXPECT_LE(eval.sat_checks(), doc->node_count() * query->size());
}

TEST(DomEvaluatorTest, EvaluateReturnsNodesInDocumentOrder) {
  auto doc = xml::ParseIntoDom("<r><b>1</b><a/><b>2</b></r>");
  ASSERT_TRUE(doc.ok());
  auto query = xpath::ParseAndCompile("//b");
  ASSERT_TRUE(query.ok());
  DomEvaluator eval(&doc.value());
  auto nodes = eval.Evaluate(query.value());
  ASSERT_EQ(nodes.size(), 2u);
  EXPECT_LT(nodes[0]->order, nodes[1]->order);
}

TEST(DomEvaluatorTest, BadQueryPropagates) {
  auto r = EvaluateOnDocument("<a/>", "not valid [");
  EXPECT_FALSE(r.ok());
}

TEST(DomEvaluatorTest, BadDocumentPropagates) {
  auto r = EvaluateOnDocument("<a><b></a>", "//a");
  EXPECT_FALSE(r.ok());
}

}  // namespace
}  // namespace vitex::baseline
