#include "baseline/naive_matcher.h"

#include <gtest/gtest.h>

#include "workload/book_generator.h"
#include "xml/sax_parser.h"

namespace vitex::baseline {
namespace {

struct NaiveRun {
  std::vector<std::string> fragments;
  NaiveStats stats;
  Status status;
};

NaiveRun EvalQuery(std::string_view query, std::string_view doc,
             NaiveStreamMatcher::Options options = {}) {
  NaiveRun out;
  auto compiled = xpath::ParseAndCompile(query);
  EXPECT_TRUE(compiled.ok()) << compiled.status();
  twigm::VectorResultCollector results;
  NaiveStreamMatcher naive(&compiled.value(), &results, options);
  out.status = xml::ParseString(doc, &naive);
  out.fragments = results.SortedFragments();
  out.stats = naive.stats();
  return out;
}

TEST(NaiveMatcherTest, SimpleMatch) {
  auto r = EvalQuery("//a", "<a/>");
  ASSERT_TRUE(r.status.ok()) << r.status;
  ASSERT_EQ(r.fragments.size(), 1u);
  EXPECT_EQ(r.fragments[0], "<a/>");
}

TEST(NaiveMatcherTest, PredicateFilter) {
  auto r = EvalQuery("//a[b]", "<r><a><b/></a><a><c/></a></r>");
  ASSERT_TRUE(r.status.ok());
  ASSERT_EQ(r.fragments.size(), 1u);
  EXPECT_EQ(r.fragments[0], "<a><b/></a>");
}

TEST(NaiveMatcherTest, Figure1ProducesOneSolution) {
  auto r = EvalQuery("//section[author]//table[position]//cell",
               workload::Figure1Document());
  ASSERT_TRUE(r.status.ok());
  ASSERT_EQ(r.fragments.size(), 1u);
  EXPECT_EQ(r.fragments[0], "<cell>A</cell>");
}

TEST(NaiveMatcherTest, Figure1MaterializesNineCellMatches) {
  // The paper counts 9 pattern matches for cell₈: 3 open sections × 3 open
  // tables. Explicit instance accounting over the whole document:
  //   sections (lines 2,3,4):           3 instances
  //   tables (5,6,7), each extending 3
  //     section instances:              9 instances
  //   cell (8), extending all 9 table
  //     instances:                      9 instances  <- the paper's count
  //   position (11): table stack then
  //     holds only table₅ (3 inst.):    3 instances
  //   author (15): section stack then
  //     holds only section₂ (1 inst.):  1 instance
  // Total created: 3 + 9 + 9 + 3 + 1 = 25.
  auto compiled =
      xpath::ParseAndCompile("//section[author]//table[position]//cell");
  ASSERT_TRUE(compiled.ok());
  twigm::VectorResultCollector results;
  NaiveStreamMatcher naive(&compiled.value(), &results);
  ASSERT_TRUE(xml::ParseString(workload::Figure1Document(), &naive).ok());
  EXPECT_EQ(naive.stats().instances_created, 25u);
}

TEST(NaiveMatcherTest, InstanceCapAborts) {
  NaiveStreamMatcher::Options options;
  options.max_live_instances = 10;
  std::string doc = "<r>";
  for (int i = 0; i < 12; ++i) doc += "<a>";
  for (int i = 0; i < 12; ++i) doc += "</a>";
  doc += "</r>";
  auto r = EvalQuery("//a//a", doc, options);
  EXPECT_TRUE(r.status.IsResourceExhausted()) << r.status;
}

TEST(NaiveMatcherTest, AttributeOutput) {
  auto r = EvalQuery("//a[b]/@id", "<r><a id=\"k\"><b/></a><a id=\"m\"/></r>");
  ASSERT_TRUE(r.status.ok());
  ASSERT_EQ(r.fragments.size(), 1u);
  EXPECT_EQ(r.fragments[0], "k");
}

TEST(NaiveMatcherTest, TextOutput) {
  auto r = EvalQuery("//a/text()", "<r><a>x</a><a>y</a></r>");
  ASSERT_TRUE(r.status.ok());
  EXPECT_EQ(r.fragments.size(), 2u);
}

TEST(NaiveMatcherTest, DuplicateEmissionPrevented) {
  // The candidate qualifies via two ancestor paths; emitted once.
  auto r = EvalQuery("//a[b]//c", "<r><a><b/><a><b/><c/></a></a></r>");
  ASSERT_TRUE(r.status.ok());
  EXPECT_EQ(r.fragments.size(), 1u);
}

TEST(NaiveMatcherTest, CandidateCopiesAreCounted) {
  // Two open a-entries with one instance each: the text candidate is
  // copied into both instances (no sharing — that is the point).
  auto r = EvalQuery("//a[b]//c", "<r><a><a><c/><b/></a><b/></a></r>");
  ASSERT_TRUE(r.status.ok());
  EXPECT_EQ(r.fragments.size(), 1u);
  EXPECT_GE(r.stats.candidate_copies, 2u);
}

TEST(NaiveMatcherTest, StatsTrackPeak) {
  auto r = EvalQuery("//a//a", "<r><a><a><a/></a></a></r>");
  ASSERT_TRUE(r.status.ok());
  EXPECT_GT(r.stats.peak_live_instances, 0u);
  EXPECT_GE(r.stats.instances_created, 6u);  // 3 at step1 + 1+2 at step2
}

TEST(NaiveMatcherTest, ResetAllowsReuse) {
  auto compiled = xpath::ParseAndCompile("//a");
  ASSERT_TRUE(compiled.ok());
  twigm::VectorResultCollector results;
  NaiveStreamMatcher naive(&compiled.value(), &results);
  ASSERT_TRUE(xml::ParseString("<a/>", &naive).ok());
  ASSERT_TRUE(xml::ParseString("<r><a/><a/></r>", &naive).ok());
  EXPECT_EQ(results.size(), 3u);
}

}  // namespace
}  // namespace vitex::baseline
