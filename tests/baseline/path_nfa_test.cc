#include "baseline/path_nfa.h"

#include <gtest/gtest.h>

#include "twigm/engine.h"
#include "xml/sax_parser.h"

namespace vitex::baseline {
namespace {

Result<uint64_t> CountMatches(std::string_view query, std::string_view doc) {
  VITEX_ASSIGN_OR_RETURN(xpath::Query compiled,
                         xpath::ParseAndCompile(query));
  twigm::CountingResultHandler results;
  VITEX_ASSIGN_OR_RETURN(PathNfa nfa, PathNfa::Create(&compiled, &results));
  VITEX_RETURN_IF_ERROR(xml::ParseString(doc, &nfa));
  return nfa.matches();
}

TEST(PathNfaTest, SingleStep) {
  auto r = CountMatches("//a", "<a><a/><b/></a>");
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(r.value(), 2u);
}

TEST(PathNfaTest, ChildChain) {
  auto r = CountMatches("/a/b/c", "<a><b><c/></b><c/></a>");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 1u);
}

TEST(PathNfaTest, DescendantGap) {
  auto r = CountMatches("//a//c", "<a><b><c/></b><c/></a>");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 2u);
}

TEST(PathNfaTest, DescendantIsStrict) {
  EXPECT_EQ(CountMatches("//a//a", "<a/>").value(), 0u);
  EXPECT_EQ(CountMatches("//a//a", "<a><a/></a>").value(), 1u);
}

TEST(PathNfaTest, WildcardSteps) {
  auto r = CountMatches("//*/*", "<a><b><c/></b></a>");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 2u);  // b (child of a), c (child of b)
}

TEST(PathNfaTest, ChildAfterDescendant) {
  auto r =
      CountMatches("//a/b", "<r><a><b/></a><x><a><b/></a></x><b/></r>");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 2u);
}

TEST(PathNfaTest, RejectsPredicates) {
  auto compiled = xpath::ParseAndCompile("//a[b]");
  ASSERT_TRUE(compiled.ok());
  twigm::CountingResultHandler results;
  auto nfa = PathNfa::Create(&compiled.value(), &results);
  EXPECT_TRUE(nfa.status().IsInvalidArgument());
}

TEST(PathNfaTest, RejectsAttributesAndText) {
  for (const char* q : {"//a/@id", "//a/text()"}) {
    auto compiled = xpath::ParseAndCompile(q);
    ASSERT_TRUE(compiled.ok());
    auto nfa = PathNfa::Create(&compiled.value(), nullptr);
    EXPECT_TRUE(nfa.status().IsInvalidArgument()) << q;
  }
}

TEST(PathNfaTest, AgreesWithTwigMOnPathQueries) {
  const char* docs[] = {
      "<a><b><c/><a><b><c/></b></a></b></a>",
      "<r><a><a><b/></a></a><b/><x><a><b/><b/></a></x></r>",
      "<a><a><a><a/></a></a></a>",
  };
  const char* queries[] = {"//a", "//a//b", "/a/b", "//a/b", "//*//b",
                           "//a//a"};
  for (const char* doc : docs) {
    for (const char* q : queries) {
      auto nfa_count = CountMatches(q, doc);
      ASSERT_TRUE(nfa_count.ok()) << q;
      twigm::CountingResultHandler twigm_results;
      auto engine = twigm::Engine::Create(q, &twigm_results);
      ASSERT_TRUE(engine.ok());
      ASSERT_TRUE(engine->RunString(doc).ok());
      EXPECT_EQ(nfa_count.value(), twigm_results.count())
          << "query " << q << " on " << doc;
    }
  }
}

TEST(PathNfaTest, PeakStackDepthEqualsDocumentDepth) {
  auto compiled = xpath::ParseAndCompile("//a");
  ASSERT_TRUE(compiled.ok());
  auto nfa = PathNfa::Create(&compiled.value(), nullptr);
  ASSERT_TRUE(nfa.ok());
  ASSERT_TRUE(xml::ParseString("<a><a><a><a/></a></a></a>", &nfa.value()).ok());
  EXPECT_EQ(nfa->peak_stack_depth(), 4u);
}

}  // namespace
}  // namespace vitex::baseline
