#!/usr/bin/env python3
"""Unit tests for tools/lint_invariants.py.

Each rule gets a violating fixture tree and a clean one, built in a temp
directory, so the linter's parsing (paren-balanced CMake statements,
${VAR} resolution, waiver tags) is pinned independently of this repo's
current state. Run directly or via ctest (LintInvariantsSelfTest).
"""

import importlib.util
import json
import sys
import tempfile
import unittest
from pathlib import Path

_TOOLS = Path(__file__).resolve().parent.parent.parent / "tools"
_SPEC = importlib.util.spec_from_file_location(
    "lint_invariants", _TOOLS / "lint_invariants.py"
)
lint = importlib.util.module_from_spec(_SPEC)
_SPEC.loader.exec_module(lint)


class FixtureTest(unittest.TestCase):
    def setUp(self):
        self._tmp = tempfile.TemporaryDirectory()
        self.root = Path(self._tmp.name)

    def tearDown(self):
        self._tmp.cleanup()

    def write(self, rel, content):
        path = self.root / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(content)
        return path

    def rules_fired(self):
        return sorted({rule for rule, _, _ in lint.run(self.root)})


class Avx2IsolationTest(FixtureTest):
    def test_per_file_property_on_the_dedicated_tu_is_allowed(self):
        self.write(
            "CMakeLists.txt",
            "check_cxx_compiler_flag(-mavx2 HAS_MAVX2)\n"
            "set_source_files_properties(src/xml/simd_scan_avx2.cc\n"
            '    PROPERTIES COMPILE_OPTIONS "-mavx2")\n',
        )
        self.assertEqual(self.rules_fired(), [])

    def test_global_flag_is_flagged(self):
        self.write("CMakeLists.txt", "add_compile_options(-mavx2)\n")
        self.assertIn("avx2-isolation", self.rules_fired())

    def test_per_file_property_on_another_tu_is_flagged(self):
        self.write(
            "CMakeLists.txt",
            "set_source_files_properties(src/xml/sax_parser.cc\n"
            '    PROPERTIES COMPILE_OPTIONS "-mavx2")\n',
        )
        self.assertIn("avx2-isolation", self.rules_fired())

    def test_target_compile_options_is_flagged(self):
        self.write(
            "cmake/extra.cmake", "target_compile_options(core PRIVATE -mavx2)\n"
        )
        self.assertIn("avx2-isolation", self.rules_fired())


class CtestTimeoutTest(FixtureTest):
    def test_add_test_with_timeout_properties_is_clean(self):
        self.write(
            "CMakeLists.txt",
            "add_test(NAME Smoke COMMAND smoke)\n"
            "set_tests_properties(Smoke PROPERTIES TIMEOUT 60)\n",
        )
        self.assertEqual(self.rules_fired(), [])

    def test_add_test_without_timeout_is_flagged(self):
        self.write("CMakeLists.txt", "add_test(NAME Smoke COMMAND smoke)\n")
        self.assertIn("ctest-timeout", self.rules_fired())

    def test_discover_tests_resolves_variable_indirection(self):
        # The repo's real pattern: TIMEOUT lives in a set() variable that is
        # spliced into gtest_discover_tests(PROPERTIES ${VAR}).
        self.write(
            "CMakeLists.txt",
            "set(PROPS TIMEOUT 300)\n"
            "gtest_discover_tests(foo_test PROPERTIES ${PROPS})\n",
        )
        self.assertEqual(self.rules_fired(), [])

    def test_discover_tests_without_timeout_is_flagged(self):
        self.write(
            "CMakeLists.txt",
            "set(PROPS PROCESSORS 4)\n"
            "gtest_discover_tests(foo_test PROPERTIES ${PROPS})\n",
        )
        self.assertIn("ctest-timeout", self.rules_fired())

    def test_generated_build_trees_are_ignored(self):
        self.write(
            "build-tsan/foo[1]_include.cmake",
            "add_test(NAME foo_NOT_BUILT COMMAND oops)\n",
        )
        self.assertEqual(self.rules_fired(), [])


class RelaxedConfinementTest(FixtureTest):
    RELAXED = (
        "#include <atomic>\n"
        "std::atomic<int> v;\n"
        "int f() { return v.load(std::memory_order_relaxed); }\n"
    )

    def test_obs_files_are_exempt_by_location(self):
        self.write("src/obs/metrics.cc", self.RELAXED)
        self.assertEqual(self.rules_fired(), [])

    def test_unwaived_use_elsewhere_is_flagged(self):
        self.write("src/service/queue.cc", self.RELAXED)
        self.assertIn("relaxed-confinement", self.rules_fired())

    def test_waiver_tag_with_reason_is_honored(self):
        self.write(
            "src/service/queue.cc",
            "// lint: relaxed-ok(single-writer counter)\n" + self.RELAXED,
        )
        self.assertEqual(self.rules_fired(), [])

    def test_waiver_without_reason_is_not_honored(self):
        self.write(
            "src/service/queue.cc", "// lint: relaxed-ok()\n" + self.RELAXED
        )
        self.assertIn("relaxed-confinement", self.rules_fired())


class IostreamHeaderTest(FixtureTest):
    def test_iostream_in_src_header_is_flagged(self):
        self.write("src/common/log.h", "#include <iostream>\n")
        self.assertIn("iostream-free-headers", self.rules_fired())

    def test_iostream_in_cc_or_outside_src_is_allowed(self):
        self.write("src/common/log.cc", "#include <iostream>\n")
        self.write("tools/dump.h", "#include <iostream>\n")
        self.assertEqual(self.rules_fired(), [])

    def test_ostream_is_not_confused_with_iostream(self):
        self.write("src/common/log.h", "#include <ostream>\n")
        self.assertEqual(self.rules_fired(), [])


class BenchBaselineTest(FixtureTest):
    def _baseline(self, build_type):
        return json.dumps(
            {"context": {"vitex_build_type": build_type}, "benchmarks": []}
        )

    def test_release_baseline_is_clean(self):
        self.write("bench/baseline/BENCH_sax.json", self._baseline("Release"))
        self.assertEqual(self.rules_fired(), [])

    def test_debug_baseline_is_flagged(self):
        self.write("bench/baseline/BENCH_sax.json", self._baseline("Debug"))
        self.assertIn("bench-baseline-release", self.rules_fired())

    def test_missing_stamp_is_flagged(self):
        self.write(
            "bench/baseline/BENCH_sax.json",
            json.dumps({"context": {}, "benchmarks": []}),
        )
        self.assertIn("bench-baseline-release", self.rules_fired())

    def test_unparseable_baseline_is_flagged(self):
        self.write("bench/baseline/BENCH_sax.json", "{not json")
        self.assertIn("bench-baseline-release", self.rules_fired())


class ResetOkTest(FixtureTest):
    def test_clear_on_stamped_container_is_flagged(self):
        self.write(
            "src/twigm/candidate_store.h",
            "void Reset() {\n  slots_.clear();\n  free_list_.clear();\n}\n",
        )
        fired = lint.run(self.root)
        self.assertEqual(
            [rule for rule, _, _ in fired], ["reset-ok", "reset-ok"]
        )

    def test_waived_clear_is_allowed(self):
        self.write(
            "src/twigm/union_engine.h",
            "void Shutdown() {\n"
            "  seen_.clear();  // lint: reset-ok(engine teardown, not a "
            "document reset)\n"
            "}\n",
        )
        self.assertEqual(self.rules_fired(), [])

    def test_node_stack_clear_is_flagged(self):
        self.write(
            "src/twigm/machine.cc",
            "void TwigMachine::Reset() {\n"
            "  for (auto& node : nodes_) node.stack.clear();\n"
            "}\n",
        )
        self.assertIn("reset-ok", self.rules_fired())

    def test_unstamped_containers_are_not_flagged(self):
        self.write(
            "src/twigm/machine.cc",
            "void F() {\n"
            "  completed_fragment_.clear();\n"
            "  e.candidates.clear();\n"
            "  targets_.clear();\n"
            "}\n",
        )
        self.assertEqual(self.rules_fired(), [])

    def test_outside_twigm_is_not_flagged(self):
        self.write("src/service/sink.cc", "void F() { slots_.clear(); }\n")
        self.assertEqual(self.rules_fired(), [])


class CliTest(FixtureTest):
    def test_exit_codes_and_report_shape(self):
        self.write("CMakeLists.txt", "add_test(NAME Smoke COMMAND smoke)\n")
        self.assertEqual(lint.main(["--root", str(self.root)]), 1)
        (self.root / "CMakeLists.txt").write_text(
            "add_test(NAME Smoke COMMAND smoke)\n"
            "set_tests_properties(Smoke PROPERTIES TIMEOUT 60)\n"
        )
        self.assertEqual(lint.main(["--root", str(self.root)]), 0)


if __name__ == "__main__":
    sys.exit(unittest.main())
