#include "common/random.h"

#include <gtest/gtest.h>

#include <set>

namespace vitex {
namespace {

TEST(RandomTest, DeterministicAcrossInstances) {
  Random a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(RandomTest, DifferentSeedsDiffer) {
  Random a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_LT(same, 5);
}

TEST(RandomTest, UniformStaysInBound) {
  Random rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.Uniform(10), 10u);
  }
}

TEST(RandomTest, UniformHitsAllBuckets) {
  Random rng(7);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.Uniform(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(RandomTest, UniformRangeInclusive) {
  Random rng(9);
  bool hit_lo = false, hit_hi = false;
  for (int i = 0; i < 2000; ++i) {
    int64_t v = rng.UniformRange(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    hit_lo |= v == -3;
    hit_hi |= v == 3;
  }
  EXPECT_TRUE(hit_lo);
  EXPECT_TRUE(hit_hi);
}

TEST(RandomTest, OneInEdgeCases) {
  Random rng(5);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.OneIn(0.0));
    EXPECT_TRUE(rng.OneIn(1.0));
    EXPECT_FALSE(rng.OneIn(-0.5));
    EXPECT_TRUE(rng.OneIn(1.5));
  }
}

TEST(RandomTest, OneInApproximatesProbability) {
  Random rng(11);
  int hits = 0;
  const int trials = 10000;
  for (int i = 0; i < trials; ++i) {
    if (rng.OneIn(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / trials, 0.3, 0.03);
}

TEST(RandomTest, NextDoubleInUnitInterval) {
  Random rng(13);
  for (int i = 0; i < 1000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RandomTest, NextNameHasRequestedLengthAndAlphabet) {
  Random rng(17);
  std::string name = rng.NextName(12);
  EXPECT_EQ(name.size(), 12u);
  for (char c : name) {
    EXPECT_GE(c, 'a');
    EXPECT_LE(c, 'z');
  }
}

}  // namespace
}  // namespace vitex
