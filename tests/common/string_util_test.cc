#include "common/string_util.h"

#include <gtest/gtest.h>

namespace vitex {
namespace {

TEST(TrimWhitespaceTest, TrimsBothEnds) {
  EXPECT_EQ(TrimWhitespace("  abc  "), "abc");
  EXPECT_EQ(TrimWhitespace("\t\nabc\r\n"), "abc");
  EXPECT_EQ(TrimWhitespace("abc"), "abc");
}

TEST(TrimWhitespaceTest, AllWhitespaceBecomesEmpty) {
  EXPECT_EQ(TrimWhitespace("   "), "");
  EXPECT_EQ(TrimWhitespace(""), "");
}

TEST(TrimWhitespaceTest, PreservesInteriorWhitespace) {
  EXPECT_EQ(TrimWhitespace(" a b c "), "a b c");
}

TEST(IsAllWhitespaceTest, Basics) {
  EXPECT_TRUE(IsAllWhitespace(""));
  EXPECT_TRUE(IsAllWhitespace(" \t\r\n"));
  EXPECT_FALSE(IsAllWhitespace(" x "));
}

TEST(SplitStringTest, SplitsAndKeepsEmptyPieces) {
  auto pieces = SplitString("a,b,,c", ',');
  ASSERT_EQ(pieces.size(), 4u);
  EXPECT_EQ(pieces[0], "a");
  EXPECT_EQ(pieces[1], "b");
  EXPECT_EQ(pieces[2], "");
  EXPECT_EQ(pieces[3], "c");
}

TEST(SplitStringTest, NoSeparatorYieldsWhole) {
  auto pieces = SplitString("abc", ',');
  ASSERT_EQ(pieces.size(), 1u);
  EXPECT_EQ(pieces[0], "abc");
}

TEST(SplitStringTest, EmptyInputYieldsOneEmptyPiece) {
  auto pieces = SplitString("", ',');
  ASSERT_EQ(pieces.size(), 1u);
  EXPECT_EQ(pieces[0], "");
}

TEST(StartsEndsWithTest, Basics) {
  EXPECT_TRUE(StartsWith("<!DOCTYPE html", "<!DOCTYPE"));
  EXPECT_FALSE(StartsWith("<!DOC", "<!DOCTYPE"));
  EXPECT_TRUE(EndsWith("file.xml", ".xml"));
  EXPECT_FALSE(EndsWith("xml", ".xml"));
  EXPECT_TRUE(StartsWith("abc", ""));
  EXPECT_TRUE(EndsWith("abc", ""));
}

TEST(ContainsTest, Basics) {
  EXPECT_TRUE(Contains("hello world", "lo wo"));
  EXPECT_FALSE(Contains("hello", "world"));
  EXPECT_TRUE(Contains("abc", ""));
}

TEST(JoinStringsTest, Basics) {
  EXPECT_EQ(JoinStrings({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(JoinStrings({"one"}, ","), "one");
  EXPECT_EQ(JoinStrings({}, ","), "");
}

TEST(HumanBytesTest, Units) {
  EXPECT_EQ(HumanBytes(512), "512 B");
  EXPECT_EQ(HumanBytes(2048), "2.0 KB");
  EXPECT_EQ(HumanBytes(75 * 1024 * 1024), "75.0 MB");
}

TEST(WithThousandsSeparatorsTest, Basics) {
  EXPECT_EQ(WithThousandsSeparators(0), "0");
  EXPECT_EQ(WithThousandsSeparators(999), "999");
  EXPECT_EQ(WithThousandsSeparators(1000), "1,000");
  EXPECT_EQ(WithThousandsSeparators(1234567), "1,234,567");
  EXPECT_EQ(WithThousandsSeparators(1000000000ull), "1,000,000,000");
}

TEST(XmlNameTest, ValidNames) {
  EXPECT_TRUE(IsValidXmlName("a"));
  EXPECT_TRUE(IsValidXmlName("ProteinEntry"));
  EXPECT_TRUE(IsValidXmlName("_private"));
  EXPECT_TRUE(IsValidXmlName("ns:tag"));
  EXPECT_TRUE(IsValidXmlName("a-b.c_d"));
  EXPECT_TRUE(IsValidXmlName("tag123"));
}

TEST(XmlNameTest, InvalidNames) {
  EXPECT_FALSE(IsValidXmlName(""));
  EXPECT_FALSE(IsValidXmlName("1tag"));
  EXPECT_FALSE(IsValidXmlName("-tag"));
  EXPECT_FALSE(IsValidXmlName(".tag"));
  EXPECT_FALSE(IsValidXmlName("ta g"));
  EXPECT_FALSE(IsValidXmlName("ta<g"));
}

TEST(XmlNameTest, MultibyteUtf8Accepted) {
  EXPECT_TRUE(IsValidXmlName("\xc3\xa9l\xc3\xa9ment"));  // élément
}

}  // namespace
}  // namespace vitex
