#include "common/memory_tracker.h"

#include <gtest/gtest.h>

namespace vitex {
namespace {

TEST(MemoryTrackerTest, StartsAtZero) {
  MemoryTracker t;
  EXPECT_EQ(t.live_bytes(), 0u);
  EXPECT_EQ(t.peak_bytes(), 0u);
}

TEST(MemoryTrackerTest, AddAndRelease) {
  MemoryTracker t;
  t.Add(100);
  EXPECT_EQ(t.live_bytes(), 100u);
  t.Add(50);
  EXPECT_EQ(t.live_bytes(), 150u);
  t.Release(60);
  EXPECT_EQ(t.live_bytes(), 90u);
}

TEST(MemoryTrackerTest, PeakTracksHighWaterMark) {
  MemoryTracker t;
  t.Add(100);
  t.Release(100);
  t.Add(40);
  EXPECT_EQ(t.peak_bytes(), 100u);
  t.Add(200);
  EXPECT_EQ(t.peak_bytes(), 240u);
}

TEST(MemoryTrackerTest, OverReleaseClampsToZero) {
  MemoryTracker t;
  t.Add(10);
  t.Release(100);
  EXPECT_EQ(t.live_bytes(), 0u);
}

TEST(MemoryTrackerTest, ResetPeakToLive) {
  MemoryTracker t;
  t.Add(500);
  t.Release(400);
  EXPECT_EQ(t.peak_bytes(), 500u);
  t.ResetPeak();
  EXPECT_EQ(t.peak_bytes(), 100u);
  t.Add(1);
  EXPECT_EQ(t.peak_bytes(), 101u);
}

// AllocationScope reads deltas of the thread-local counters. This binary
// does not install the counting operator new (only zero_alloc_test does),
// so the counters move exactly as much as we tick them by hand.
TEST(AllocationScopeTest, ReportsDeltasSinceConstruction) {
  AllocCounters& c = ThreadAllocCounters();
  c.allocations += 5;  // pre-existing traffic, invisible to the scope
  AllocationScope scope;
  EXPECT_EQ(scope.allocations(), 0u);
  c.allocations += 3;
  c.deallocations += 2;
  c.allocated_bytes += 128;
  EXPECT_EQ(scope.allocations(), 3u);
  EXPECT_EQ(scope.deallocations(), 2u);
  EXPECT_EQ(scope.allocated_bytes(), 128u);
}

TEST(AllocationScopeTest, RestartRebaselines) {
  AllocCounters& c = ThreadAllocCounters();
  AllocationScope scope;
  c.allocations += 7;
  EXPECT_EQ(scope.allocations(), 7u);
  scope.Restart();
  EXPECT_EQ(scope.allocations(), 0u);
  c.allocations += 1;
  EXPECT_EQ(scope.allocations(), 1u);
}

TEST(AllocationScopeTest, CountingNotInstalledByDefault) {
  // Only a TU that defines the counting operator new flips this; the
  // zero-alloc harness asserts on it so a silently-missing hook cannot
  // produce a vacuous pass.
  EXPECT_FALSE(AllocCountingInstalled());
}

}  // namespace
}  // namespace vitex
