#include "common/memory_tracker.h"

#include <gtest/gtest.h>

namespace vitex {
namespace {

TEST(MemoryTrackerTest, StartsAtZero) {
  MemoryTracker t;
  EXPECT_EQ(t.live_bytes(), 0u);
  EXPECT_EQ(t.peak_bytes(), 0u);
}

TEST(MemoryTrackerTest, AddAndRelease) {
  MemoryTracker t;
  t.Add(100);
  EXPECT_EQ(t.live_bytes(), 100u);
  t.Add(50);
  EXPECT_EQ(t.live_bytes(), 150u);
  t.Release(60);
  EXPECT_EQ(t.live_bytes(), 90u);
}

TEST(MemoryTrackerTest, PeakTracksHighWaterMark) {
  MemoryTracker t;
  t.Add(100);
  t.Release(100);
  t.Add(40);
  EXPECT_EQ(t.peak_bytes(), 100u);
  t.Add(200);
  EXPECT_EQ(t.peak_bytes(), 240u);
}

TEST(MemoryTrackerTest, OverReleaseClampsToZero) {
  MemoryTracker t;
  t.Add(10);
  t.Release(100);
  EXPECT_EQ(t.live_bytes(), 0u);
}

TEST(MemoryTrackerTest, ResetPeakToLive) {
  MemoryTracker t;
  t.Add(500);
  t.Release(400);
  EXPECT_EQ(t.peak_bytes(), 500u);
  t.ResetPeak();
  EXPECT_EQ(t.peak_bytes(), 100u);
  t.Add(1);
  EXPECT_EQ(t.peak_bytes(), 101u);
}

}  // namespace
}  // namespace vitex
