#include "common/status.h"

#include <gtest/gtest.h>

#include "common/result.h"

namespace vitex {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.message(), "");
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, NamedConstructorsSetCodeAndMessage) {
  EXPECT_TRUE(Status::InvalidArgument("x").IsInvalidArgument());
  EXPECT_TRUE(Status::ParseError("x").IsParseError());
  EXPECT_TRUE(Status::Unsupported("x").IsUnsupported());
  EXPECT_TRUE(Status::Internal("x").IsInternal());
  EXPECT_TRUE(Status::IoError("x").IsIoError());
  EXPECT_TRUE(Status::ResourceExhausted("x").IsResourceExhausted());
  EXPECT_EQ(Status::ParseError("bad tag").message(), "bad tag");
}

TEST(StatusTest, ToStringIncludesCodeName) {
  EXPECT_EQ(Status::ParseError("bad tag").ToString(), "ParseError: bad tag");
  EXPECT_EQ(Status::Internal("oops").ToString(), "Internal: oops");
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::ParseError("a"), Status::ParseError("a"));
  EXPECT_NE(Status::ParseError("a"), Status::ParseError("b"));
  EXPECT_NE(Status::ParseError("a"), Status::Internal("a"));
  EXPECT_EQ(Status::OK(), Status());
}

TEST(StatusTest, WithContextPrependsToMessage) {
  Status s = Status::ParseError("bad entity").WithContext("line 12");
  EXPECT_TRUE(s.IsParseError());
  EXPECT_EQ(s.message(), "line 12: bad entity");
}

TEST(StatusTest, WithContextOnOkIsNoop) {
  Status s = Status::OK().WithContext("ctx");
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.message(), "");
}

TEST(StatusTest, ReturnIfErrorPropagates) {
  auto fails = [] { return Status::IoError("disk"); };
  auto wrapper = [&]() -> Status {
    VITEX_RETURN_IF_ERROR(fails());
    return Status::Internal("unreachable");
  };
  EXPECT_TRUE(wrapper().IsIoError());
}

TEST(StatusTest, ReturnIfErrorPassesThroughOk) {
  auto succeeds = [] { return Status::OK(); };
  auto wrapper = [&]() -> Status {
    VITEX_RETURN_IF_ERROR(succeeds());
    return Status::Internal("reached");
  };
  EXPECT_TRUE(wrapper().IsInternal());
}

TEST(StatusCodeTest, AllCodesHaveNames) {
  EXPECT_EQ(StatusCodeToString(StatusCode::kOk), "OK");
  EXPECT_EQ(StatusCodeToString(StatusCode::kInvalidArgument),
            "InvalidArgument");
  EXPECT_EQ(StatusCodeToString(StatusCode::kParseError), "ParseError");
  EXPECT_EQ(StatusCodeToString(StatusCode::kUnsupported), "Unsupported");
  EXPECT_EQ(StatusCodeToString(StatusCode::kInternal), "Internal");
  EXPECT_EQ(StatusCodeToString(StatusCode::kIoError), "IoError");
  EXPECT_EQ(StatusCodeToString(StatusCode::kResourceExhausted),
            "ResourceExhausted");
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(*r, 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::ParseError("nope"));
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsParseError());
  EXPECT_EQ(r.value_or(-1), -1);
}

TEST(ResultTest, ValueOrReturnsValueOnSuccess) {
  Result<int> r(7);
  EXPECT_EQ(r.value_or(-1), 7);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r(std::string("hello"));
  std::string s = std::move(r).value();
  EXPECT_EQ(s, "hello");
}

TEST(ResultTest, AssignOrReturnMacro) {
  auto produce = [](bool ok) -> Result<int> {
    if (ok) return 5;
    return Status::IoError("x");
  };
  auto consume = [&](bool ok) -> Status {
    VITEX_ASSIGN_OR_RETURN(int v, produce(ok));
    EXPECT_EQ(v, 5);
    return Status::OK();
  };
  EXPECT_TRUE(consume(true).ok());
  EXPECT_TRUE(consume(false).IsIoError());
}

TEST(ResultTest, ArrowOperator) {
  Result<std::string> r(std::string("abc"));
  EXPECT_EQ(r->size(), 3u);
}

}  // namespace
}  // namespace vitex
