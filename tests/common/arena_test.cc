#include "common/arena.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <vector>

namespace vitex {
namespace {

TEST(ArenaTest, AllocateReturnsWritableMemory) {
  Arena arena;
  void* p = arena.Allocate(128);
  ASSERT_NE(p, nullptr);
  std::memset(p, 0xab, 128);
  EXPECT_GE(arena.allocated_bytes(), 128u);
}

TEST(ArenaTest, AlignmentIsRespected) {
  Arena arena;
  for (size_t align : {1u, 2u, 4u, 8u, 16u, 32u}) {
    arena.Allocate(1, 1);  // deliberately misalign the bump pointer
    void* p = arena.Allocate(8, align);
    EXPECT_EQ(reinterpret_cast<uintptr_t>(p) % align, 0u)
        << "align=" << align;
  }
}

TEST(ArenaTest, LargeAllocationGetsDedicatedBlock) {
  Arena arena(/*block_bytes=*/1024);
  void* p = arena.Allocate(1 << 20);
  ASSERT_NE(p, nullptr);
  std::memset(p, 1, 1 << 20);
  EXPECT_GE(arena.reserved_bytes(), 1u << 20);
}

TEST(ArenaTest, ManySmallAllocationsSpanBlocks) {
  Arena arena(/*block_bytes=*/256);
  std::vector<int*> ptrs;
  for (int i = 0; i < 1000; ++i) {
    int* p = arena.Create<int>(i);
    ptrs.push_back(p);
  }
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(*ptrs[i], i) << "allocation " << i << " was clobbered";
  }
}

TEST(ArenaTest, CreateConstructsInPlace) {
  struct Point {
    int x;
    int y;
  };
  Arena arena;
  Point* p = arena.Create<Point>(3, 4);
  EXPECT_EQ(p->x, 3);
  EXPECT_EQ(p->y, 4);
}

TEST(ArenaTest, CopyStringProducesStableCopy) {
  Arena arena;
  std::string original = "hello world";
  std::string_view copy = arena.CopyString(original);
  original.assign("clobbered!!");
  EXPECT_EQ(copy, "hello world");
}

TEST(ArenaTest, CopyEmptyString) {
  Arena arena;
  std::string_view copy = arena.CopyString("");
  EXPECT_TRUE(copy.empty());
  EXPECT_EQ(arena.allocated_bytes(), 0u);
}

TEST(ArenaTest, AccountingGrowsMonotonically) {
  Arena arena(1024);
  size_t last = 0;
  for (int i = 0; i < 100; ++i) {
    arena.Allocate(100);
    EXPECT_GT(arena.allocated_bytes(), last);
    last = arena.allocated_bytes();
    EXPECT_GE(arena.reserved_bytes(), arena.allocated_bytes() > 1024
                                          ? 1024u
                                          : arena.allocated_bytes());
  }
  EXPECT_EQ(arena.allocated_bytes(), 100u * 100u);
}

TEST(ArenaTest, MoveTransfersOwnership) {
  Arena a(1024);
  std::string_view s = a.CopyString("persistent");
  Arena b = std::move(a);
  EXPECT_EQ(s, "persistent");
  EXPECT_GE(b.allocated_bytes(), 10u);
}

}  // namespace
}  // namespace vitex
