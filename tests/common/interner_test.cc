#include "common/interner.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace vitex {
namespace {

TEST(SymbolTableTest, IdsAreDenseAndAllocationOrdered) {
  SymbolTable table;
  EXPECT_EQ(table.Intern("a"), 0u);
  EXPECT_EQ(table.Intern("b"), 1u);
  EXPECT_EQ(table.Intern("c"), 2u);
  EXPECT_EQ(table.size(), 3u);
  // Re-interning returns the original id and mints nothing.
  EXPECT_EQ(table.Intern("b"), 1u);
  EXPECT_EQ(table.size(), 3u);
}

TEST(SymbolTableTest, LookupDoesNotMint) {
  SymbolTable table;
  table.Intern("known");
  EXPECT_EQ(table.Lookup("known"), 0u);
  EXPECT_EQ(table.Lookup("unknown"), kNoSymbol);
  EXPECT_EQ(table.size(), 1u);
}

TEST(SymbolTableTest, NameRoundTrips) {
  SymbolTable table;
  Symbol s = table.Intern("ProteinEntry");
  EXPECT_EQ(table.name(s), "ProteinEntry");
}

TEST(SymbolTableTest, NamesAreStableAgainstCallerStorage) {
  SymbolTable table;
  std::string caller = "ephemeral-name";
  Symbol s = table.Intern(caller);
  caller.assign("clobbered completely, reallocation very much intended!");
  EXPECT_EQ(table.name(s), "ephemeral-name");
  EXPECT_EQ(table.Lookup("ephemeral-name"), s);
}

TEST(SymbolTableTest, GrowthKeepsAllSymbolsFindable) {
  SymbolTable table;
  std::vector<std::string> names;
  // Far past the initial slot count to force several rehashes.
  for (int i = 0; i < 5000; ++i) {
    names.push_back("tag_" + std::to_string(i));
    ASSERT_EQ(table.Intern(names.back()), static_cast<Symbol>(i));
  }
  EXPECT_EQ(table.size(), 5000u);
  for (int i = 0; i < 5000; ++i) {
    EXPECT_EQ(table.Lookup(names[i]), static_cast<Symbol>(i)) << names[i];
    EXPECT_EQ(table.name(static_cast<Symbol>(i)), names[i]);
  }
  EXPECT_GT(table.arena_bytes(), 0u);
}

TEST(SymbolTableTest, CollidingAndSimilarNamesStayDistinct) {
  SymbolTable table;
  // Names engineered to share hash buckets often enough to exercise probing:
  // short strings over a tiny alphabet.
  std::vector<std::string> names;
  for (char a = 'a'; a <= 'f'; ++a) {
    for (char b = 'a'; b <= 'f'; ++b) {
      for (char c = 'a'; c <= 'f'; ++c) {
        names.push_back(std::string{a, b, c});
      }
    }
  }
  for (const std::string& n : names) table.Intern(n);
  EXPECT_EQ(table.size(), names.size());
  for (size_t i = 0; i < names.size(); ++i) {
    EXPECT_EQ(table.Lookup(names[i]), static_cast<Symbol>(i));
  }
}

TEST(SymbolTableTest, EmptyNameIsAValidSymbol) {
  SymbolTable table;
  Symbol s = table.Intern("");
  EXPECT_EQ(s, 0u);
  EXPECT_EQ(table.Lookup(""), s);
  EXPECT_EQ(table.name(s), "");
}

TEST(SymbolTableTest, MoveKeepsContents) {
  SymbolTable table;
  table.Intern("x");
  table.Intern("y");
  SymbolTable moved = std::move(table);
  EXPECT_EQ(moved.Lookup("x"), 0u);
  EXPECT_EQ(moved.Lookup("y"), 1u);
  EXPECT_EQ(moved.name(1), "y");
}

}  // namespace
}  // namespace vitex
