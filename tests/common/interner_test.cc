#include "common/interner.h"

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <type_traits>
#include <vector>

namespace vitex {
namespace {

TEST(SymbolTableTest, IdsAreDenseAndAllocationOrdered) {
  SymbolTable table;
  EXPECT_EQ(table.Intern("a"), 0u);
  EXPECT_EQ(table.Intern("b"), 1u);
  EXPECT_EQ(table.Intern("c"), 2u);
  EXPECT_EQ(table.size(), 3u);
  // Re-interning returns the original id and mints nothing.
  EXPECT_EQ(table.Intern("b"), 1u);
  EXPECT_EQ(table.size(), 3u);
}

TEST(SymbolTableTest, LookupDoesNotMint) {
  SymbolTable table;
  table.Intern("known");
  EXPECT_EQ(table.Lookup("known"), 0u);
  EXPECT_EQ(table.Lookup("unknown"), kNoSymbol);
  EXPECT_EQ(table.size(), 1u);
}

TEST(SymbolTableTest, NameRoundTrips) {
  SymbolTable table;
  Symbol s = table.Intern("ProteinEntry");
  EXPECT_EQ(table.name(s), "ProteinEntry");
}

TEST(SymbolTableTest, NamesAreStableAgainstCallerStorage) {
  SymbolTable table;
  std::string caller = "ephemeral-name";
  Symbol s = table.Intern(caller);
  caller.assign("clobbered completely, reallocation very much intended!");
  EXPECT_EQ(table.name(s), "ephemeral-name");
  EXPECT_EQ(table.Lookup("ephemeral-name"), s);
}

TEST(SymbolTableTest, GrowthKeepsAllSymbolsFindable) {
  SymbolTable table;
  std::vector<std::string> names;
  // Far past the initial slot count to force several rehashes.
  for (int i = 0; i < 5000; ++i) {
    names.push_back("tag_" + std::to_string(i));
    ASSERT_EQ(table.Intern(names.back()), static_cast<Symbol>(i));
  }
  EXPECT_EQ(table.size(), 5000u);
  for (int i = 0; i < 5000; ++i) {
    EXPECT_EQ(table.Lookup(names[i]), static_cast<Symbol>(i)) << names[i];
    EXPECT_EQ(table.name(static_cast<Symbol>(i)), names[i]);
  }
  EXPECT_GT(table.arena_bytes(), 0u);
}

TEST(SymbolTableTest, CollidingAndSimilarNamesStayDistinct) {
  SymbolTable table;
  // Names engineered to share hash buckets often enough to exercise probing:
  // short strings over a tiny alphabet.
  std::vector<std::string> names;
  for (char a = 'a'; a <= 'f'; ++a) {
    for (char b = 'a'; b <= 'f'; ++b) {
      for (char c = 'a'; c <= 'f'; ++c) {
        names.push_back(std::string{a, b, c});
      }
    }
  }
  for (const std::string& n : names) table.Intern(n);
  EXPECT_EQ(table.size(), names.size());
  for (size_t i = 0; i < names.size(); ++i) {
    EXPECT_EQ(table.Lookup(names[i]), static_cast<Symbol>(i));
  }
}

TEST(SymbolTableTest, EmptyNameIsAValidSymbol) {
  SymbolTable table;
  Symbol s = table.Intern("");
  EXPECT_EQ(s, 0u);
  EXPECT_EQ(table.Lookup(""), s);
  EXPECT_EQ(table.name(s), "");
}

// The table owns its freeze capability (a mutex), which pins it in place:
// it is shared by pointer, never by value. Compile-time fact, pinned here
// so a future "just make it movable" edit has to confront the contract.
static_assert(!std::is_move_constructible_v<SymbolTable>,
              "SymbolTable owns its freeze mutex and must stay pinned");
static_assert(!std::is_copy_constructible_v<SymbolTable>,
              "SymbolTable is shared by pointer, never copied");

// -------------------------------------------------------------------------
// The freeze (read-only phase) contract — what lets the service's M parser
// threads resolve symbols concurrently without locks (DESIGN.md §9).
// -------------------------------------------------------------------------

// Phase flips require the table's writer capability (a compile-time fact
// under -Wthread-safety; see tests/analysis/). The scoped blocks below are
// the real-world idiom: hold mu() exclusively exactly across the flip.

TEST(InternerFreezeTest, FreezeTogglesAndReInterningStaysAllowed) {
  SymbolTable table;
  Symbol a = table.Intern("a");
  EXPECT_FALSE(table.frozen());
  {
    WriterMutexLock lock(table.mu());
    table.Freeze();
  }
  EXPECT_TRUE(table.frozen());
  // Interning an EXISTING name mutates nothing and stays legal.
  EXPECT_EQ(table.Intern("a"), a);
  EXPECT_EQ(table.size(), 1u);
  {
    WriterMutexLock lock(table.mu());
    table.Unfreeze();
  }
  EXPECT_FALSE(table.frozen());
  EXPECT_EQ(table.Intern("b"), 1u);  // minting is legal again
  EXPECT_EQ(table.size(), 2u);
}

TEST(InternerFreezeTest, FrozenTableRefusesToMint) {
  SymbolTable table;
  table.Intern("known");
  {
    WriterMutexLock lock(table.mu());
    table.Freeze();
  }
#ifdef NDEBUG
  // Release: the guard returns the never-valid sentinel without mutating.
  EXPECT_EQ(table.Intern("new-name"), kNoSymbol);
  EXPECT_EQ(table.size(), 1u);
  EXPECT_EQ(table.Lookup("new-name"), kNoSymbol);
#else
  // Debug: minting on a frozen table is a caller bug and asserts.
  EXPECT_DEATH(table.Intern("new-name"), "frozen");
#endif
}

// The asan/tsan acceptance test: a frozen table serves concurrent lookups
// (hits and misses, plus name()/size() reads) from many threads with no
// synchronization at all.
TEST(InternerFreezeTest, FrozenTableServesConcurrentLookups) {
  SymbolTable table;
  std::vector<std::string> names;
  for (int i = 0; i < 512; ++i) {
    names.push_back("tag_" + std::to_string(i));
    table.Intern(names.back());
  }
  {
    WriterMutexLock lock(table.mu());
    table.Freeze();
  }
  constexpr int kThreads = 8;
  constexpr int kRounds = 200;
  std::vector<std::thread> threads;
  std::atomic<uint64_t> hits{0};
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&table, &names, &hits, t] {
      uint64_t local = 0;
      for (int r = 0; r < kRounds; ++r) {
        for (size_t i = t % 7; i < names.size(); i += 7) {
          Symbol s = table.Lookup(names[i]);
          ASSERT_EQ(s, static_cast<Symbol>(i));
          ASSERT_EQ(table.name(s), names[i]);
          ++local;
        }
        ASSERT_EQ(table.Lookup("never-interned-" + std::to_string(r)),
                  kNoSymbol);
        ASSERT_EQ(table.size(), names.size());
      }
      hits.fetch_add(local);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_GT(hits.load(), 0u);
}

}  // namespace
}  // namespace vitex
