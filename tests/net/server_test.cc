// End-to-end tests of the TCP serving surface (net/server.h) through the
// real client (net/client.h): handshake and auth, the full
// subscribe/publish/match/unsubscribe lifecycle, error-code parity with
// the in-process facade (the satellite-3 contract: the wire changes the
// transport, never the Status), protocol-violation teardown, shutdown
// BYE, and the HTTP /statsz side door. Everything runs against a live
// Service + Server on an ephemeral loopback port.

#include "net/server.h"

#include <gtest/gtest.h>

#if defined(__linux__)

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <memory>
#include <string>

#include "net/client.h"
#include "service/vitex.h"

namespace vitex::net {
namespace {

class NetServerTest : public ::testing::Test {
 protected:
  void StartServer(ServerOptions options = {}) {
    service_ = std::make_unique<vitex::Service>(MakeServiceOptions());
    auto started = Server::Start(service_.get(), options);
    ASSERT_TRUE(started.ok()) << started.status().ToString();
    server_ = std::move(started).value();
  }

  static vitex::ServiceOptions MakeServiceOptions() {
    vitex::ServiceOptions options;
    options.shard_count = 2;
    options.stream_count = 1;
    return options;
  }

  Result<std::unique_ptr<Client>> Connect(ClientOptions options = {}) {
    return Client::Connect("127.0.0.1", server_->port(), options);
  }

  std::unique_ptr<vitex::Service> service_;
  std::unique_ptr<Server> server_;
};

TEST_F(NetServerTest, StartStopIsClean) {
  StartServer();
  EXPECT_GT(server_->port(), 0);
  EXPECT_TRUE(server_->Stop().ok());
  EXPECT_TRUE(server_->Stop().ok());  // idempotent
}

TEST_F(NetServerTest, HandshakeAndPing) {
  StartServer();
  auto client = Connect();
  ASSERT_TRUE(client.ok()) << client.status().ToString();
  EXPECT_TRUE((*client)->connected());
  EXPECT_TRUE((*client)->Ping().ok());
  EXPECT_EQ(server_->stats().connections_accepted, 1u);
}

TEST_F(NetServerTest, AuthTokenRequired) {
  ServerOptions options;
  options.auth_token = "sesame";
  StartServer(options);

  ClientOptions wrong;
  wrong.auth_token = "open";
  auto rejected = Connect(wrong);
  EXPECT_FALSE(rejected.ok());

  auto anonymous = Connect();
  EXPECT_FALSE(anonymous.ok());

  ClientOptions right;
  right.auth_token = "sesame";
  auto accepted = Connect(right);
  ASSERT_TRUE(accepted.ok()) << accepted.status().ToString();
  EXPECT_TRUE((*accepted)->Ping().ok());
  EXPECT_EQ(server_->stats().auth_failures, 2u);
}

TEST_F(NetServerTest, SubscribePublishDeliversMatches) {
  StartServer();
  auto client = Connect();
  ASSERT_TRUE(client.ok());

  auto sub = (*client)->Subscribe("//item/val/text()");
  ASSERT_TRUE(sub.ok()) << sub.status().ToString();

  ASSERT_TRUE((*client)
                  ->Publish("<doc><item><val>first</val></item>"
                            "<item><val>second</val></item></doc>")
                  .ok());

  auto m1 = (*client)->PollMatch(5000);
  ASSERT_TRUE(m1.ok()) << m1.status().ToString();
  ASSERT_TRUE(m1->has_value());
  EXPECT_EQ((*m1)->subscription_id, sub.value());
  EXPECT_EQ((*m1)->fragment, "first");

  auto m2 = (*client)->PollMatch(5000);
  ASSERT_TRUE(m2.ok());
  ASSERT_TRUE(m2->has_value());
  EXPECT_EQ((*m2)->fragment, "second");
  // Document-order sequence stamps are strictly increasing per document.
  EXPECT_GT((*m2)->sequence, (*m1)->sequence);
}

TEST_F(NetServerTest, MatchesFanOutToTheRightSubscription) {
  StartServer();
  auto client = Connect();
  ASSERT_TRUE(client.ok());

  auto sub_a = (*client)->Subscribe("//a/text()");
  auto sub_b = (*client)->Subscribe("//b/text()");
  ASSERT_TRUE(sub_a.ok());
  ASSERT_TRUE(sub_b.ok());
  ASSERT_NE(sub_a.value(), sub_b.value());

  ASSERT_TRUE((*client)->Publish("<r><a>va</a><b>vb</b></r>").ok());

  bool saw_a = false, saw_b = false;
  for (int i = 0; i < 2; ++i) {
    auto match = (*client)->PollMatch(5000);
    ASSERT_TRUE(match.ok());
    ASSERT_TRUE(match->has_value());
    if ((*match)->subscription_id == sub_a.value()) {
      EXPECT_EQ((*match)->fragment, "va");
      saw_a = true;
    } else {
      EXPECT_EQ((*match)->subscription_id, sub_b.value());
      EXPECT_EQ((*match)->fragment, "vb");
      saw_b = true;
    }
  }
  EXPECT_TRUE(saw_a);
  EXPECT_TRUE(saw_b);
}

TEST_F(NetServerTest, UnsubscribeStopsDelivery) {
  StartServer();
  auto client = Connect();
  ASSERT_TRUE(client.ok());

  auto sub = (*client)->Subscribe("//x/text()");
  ASSERT_TRUE(sub.ok());
  ASSERT_TRUE((*client)->Unsubscribe(sub.value()).ok());
  // Unsubscribe is async service-side; Flush forces the marker through
  // before the publish below.
  ASSERT_TRUE(service_->Flush().ok());

  ASSERT_TRUE((*client)->Publish("<r><x>gone</x></r>").ok());
  ASSERT_TRUE(service_->Flush().ok());
  auto match = (*client)->PollMatch(200);
  ASSERT_TRUE(match.ok());
  EXPECT_FALSE(match->has_value());
}

TEST_F(NetServerTest, UnknownSubscriptionIdIsAnError) {
  StartServer();
  auto client = Connect();
  ASSERT_TRUE(client.ok());
  Status status = (*client)->Unsubscribe(424242);
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  // The connection survives a well-formed but failing request.
  EXPECT_TRUE((*client)->Ping().ok());
}

TEST_F(NetServerTest, ErrorCodeParityWithFacade) {
  StartServer();
  auto client = Connect();
  ASSERT_TRUE(client.ok());

  // The same requests in-process and over the wire must produce the SAME
  // StatusCode (kStatusCodeWireMax static_asserts the mapping; this
  // checks the whole path end to end).
  const char* bad_inputs[] = {"///", "", "//a[", "not an xpath"};
  for (const char* xpath : bad_inputs) {
    Status facade = service_->Subscribe(xpath).status();
    Status wire = (*client)->Subscribe(xpath).status();
    ASSERT_FALSE(facade.ok()) << xpath;
    EXPECT_EQ(wire.code(), facade.code()) << xpath;
  }
}

TEST_F(NetServerTest, StatszOverTheWire) {
  StartServer();
  auto client = Connect();
  ASSERT_TRUE(client.ok());
  ASSERT_TRUE((*client)->Subscribe("//a").ok());

  auto statsz = (*client)->Statsz();
  ASSERT_TRUE(statsz.ok()) << statsz.status().ToString();
  // Service series and net series are both present.
  EXPECT_NE(statsz->find("vitex_net_connections_accepted_total"),
            std::string::npos);
  EXPECT_NE(statsz->find("vitex_net_connections_active"), std::string::npos);
}

TEST_F(NetServerTest, HttpGetStatszOnTheSamePort) {
  StartServer();
  auto client = Connect();  // one framed session for the counters
  ASSERT_TRUE(client.ok());

  int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(server_->port());
  ASSERT_EQ(::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr), 1);
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  const char request[] = "GET /statsz HTTP/1.1\r\nHost: t\r\n\r\n";
  ASSERT_EQ(::send(fd, request, sizeof(request) - 1, 0),
            static_cast<ssize_t>(sizeof(request) - 1));
  std::string response;
  char buf[4096];
  ssize_t n;
  while ((n = ::recv(fd, buf, sizeof(buf), 0)) > 0) {
    response.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  EXPECT_NE(response.find("200 OK"), std::string::npos);
  EXPECT_NE(response.find("vitex_net_http_requests_total"), std::string::npos);
  EXPECT_GE(server_->stats().http_requests, 1u);
}

TEST_F(NetServerTest, HttpUnknownPathIs404) {
  StartServer();
  int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(server_->port());
  ASSERT_EQ(::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr), 1);
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  const char request[] = "GET /nothing HTTP/1.1\r\n\r\n";
  ASSERT_EQ(::send(fd, request, sizeof(request) - 1, 0),
            static_cast<ssize_t>(sizeof(request) - 1));
  std::string response;
  char buf[1024];
  ssize_t n;
  while ((n = ::recv(fd, buf, sizeof(buf), 0)) > 0) {
    response.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  EXPECT_NE(response.find("404"), std::string::npos);
}

TEST_F(NetServerTest, GarbageBytesGetProtocolErrorBye) {
  StartServer();
  int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(server_->port());
  ASSERT_EQ(::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr), 1);
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  // A frame header declaring a payload far beyond max_frame_size: the
  // decoder poisons, the server answers ERROR + BYE(kProtocolError) and
  // closes.
  const unsigned char poison[] = {0xff, 0xff, 0xff, 0xff, 0x01};
  ASSERT_EQ(::send(fd, poison, sizeof(poison), 0),
            static_cast<ssize_t>(sizeof(poison)));
  std::string response;
  char buf[4096];
  ssize_t n;
  while ((n = ::recv(fd, buf, sizeof(buf), 0)) > 0) {
    response.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);

  FrameDecoder decoder(kDefaultMaxFrameSize);
  (void)decoder.Feed(response);
  bool saw_bye = false;
  while (auto frame = decoder.Next()) {
    if (frame->type == static_cast<uint8_t>(FrameType::kBye)) {
      auto bye = DecodeBye(frame->payload);
      ASSERT_TRUE(bye.ok());
      EXPECT_EQ(bye->reason, ByeReason::kProtocolError);
      saw_bye = true;
    }
  }
  EXPECT_TRUE(saw_bye);
  EXPECT_GE(server_->stats().protocol_errors, 1u);
}

TEST_F(NetServerTest, StopSendsShutdownBye) {
  StartServer();
  auto client = Connect();
  ASSERT_TRUE(client.ok());
  ASSERT_TRUE(server_->Stop().ok());

  // The client observes BYE(kShutdown) and then EOF.
  auto match = (*client)->PollMatch(2000);
  EXPECT_FALSE(match.ok());
  ASSERT_TRUE((*client)->bye().has_value());
  EXPECT_EQ((*client)->bye()->reason, ByeReason::kShutdown);
}

TEST_F(NetServerTest, ManySessionsShareOneService) {
  StartServer();
  constexpr int kSessions = 20;
  std::vector<std::unique_ptr<Client>> clients;
  for (int i = 0; i < kSessions; ++i) {
    auto client = Connect();
    ASSERT_TRUE(client.ok()) << i;
    auto sub = (*client)->Subscribe("//n/text()");
    ASSERT_TRUE(sub.ok()) << i;
    clients.push_back(std::move(client).value());
  }
  ASSERT_TRUE(clients[0]->Publish("<r><n>fanout</n></r>").ok());
  for (int i = 0; i < kSessions; ++i) {
    auto match = clients[static_cast<size_t>(i)]->PollMatch(5000);
    ASSERT_TRUE(match.ok()) << i;
    ASSERT_TRUE(match->has_value()) << i;
    EXPECT_EQ((*match)->fragment, "fanout") << i;
  }
  EXPECT_EQ(server_->stats().matches_sent, static_cast<uint64_t>(kSessions));
}

}  // namespace
}  // namespace vitex::net

#else  // !defined(__linux__)

TEST(NetServerTest, SkippedOffLinux) { GTEST_SKIP(); }

#endif  // defined(__linux__)
