// Frame codec conformance (net/frame.h): a streaming decoder must produce
// the same frame sequence — and the same failure — no matter where the
// byte stream is split, and must never read past a declared bound. The
// split-at-every-byte harness mirrors tests/xml/feed_split_helpers.h: the
// whole-buffer parse is the canon; every two-chunk split and the
// byte-at-a-time feed must reproduce it exactly. A seeded fuzz loop feeds
// random garbage under random chunking and asserts decode outcomes are
// chunking-invariant there too (crash-freedom is the implicit assertion
// ASan/UBSan turns into a real one).

#include "net/frame.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <functional>
#include <random>
#include <string>
#include <vector>

#include "net/protocol.h"

namespace vitex::net {
namespace {

// Canonical outcome of decoding one byte stream: the frames produced
// before any failure, plus the sticky decoder status.
struct DecodeOutcome {
  std::vector<Frame> frames;
  StatusCode code = StatusCode::kOk;

  bool operator==(const DecodeOutcome& other) const {
    if (code != other.code || frames.size() != other.frames.size()) {
      return false;
    }
    for (size_t i = 0; i < frames.size(); ++i) {
      if (frames[i].type != other.frames[i].type ||
          frames[i].payload != other.frames[i].payload) {
        return false;
      }
    }
    return true;
  }
};

DecodeOutcome DecodeChunked(const std::string& bytes,
                            const std::vector<size_t>& chunk_sizes,
                            size_t max_frame_size = kDefaultMaxFrameSize) {
  FrameDecoder decoder(max_frame_size);
  DecodeOutcome outcome;
  size_t pos = 0;
  size_t chunk_index = 0;
  while (pos < bytes.size()) {
    size_t len = chunk_sizes.empty()
                     ? bytes.size()
                     : std::min(chunk_sizes[chunk_index % chunk_sizes.size()],
                                bytes.size() - pos);
    ++chunk_index;
    if (len == 0) len = 1;
    (void)decoder.Feed(std::string_view(bytes).substr(pos, len));
    pos += len;
    while (true) {
      auto frame = decoder.Next();
      if (!frame.has_value()) break;
      outcome.frames.push_back(std::move(*frame));
    }
    if (decoder.failed()) break;
  }
  outcome.code = decoder.status().code();
  return outcome;
}

DecodeOutcome DecodeWhole(const std::string& bytes,
                          size_t max_frame_size = kDefaultMaxFrameSize) {
  return DecodeChunked(bytes, {bytes.size()}, max_frame_size);
}

// Asserts whole-buffer decode == every two-chunk split == byte-at-a-time.
void ExpectSplitInvariant(const std::string& bytes,
                          size_t max_frame_size = kDefaultMaxFrameSize) {
  DecodeOutcome canon = DecodeWhole(bytes, max_frame_size);
  for (size_t split = 1; split < bytes.size(); ++split) {
    DecodeOutcome split_outcome =
        DecodeChunked(bytes, {split, bytes.size() - split}, max_frame_size);
    ASSERT_EQ(canon, split_outcome) << "two-chunk split at byte " << split;
  }
  DecodeOutcome byte_at_a_time = DecodeChunked(bytes, {1}, max_frame_size);
  ASSERT_EQ(canon, byte_at_a_time) << "byte-at-a-time";
}

std::string FrameBytes(FrameType type, std::string_view payload) {
  return EncodeFrame(static_cast<uint8_t>(type), payload);
}

TEST(NetFrameCodecTest, HeaderRoundTrip) {
  std::string bytes = FrameBytes(FrameType::kPing, "abc");
  ASSERT_EQ(bytes.size(), kFrameHeaderSize + 3);
  // Little-endian length then type.
  EXPECT_EQ(static_cast<uint8_t>(bytes[0]), 3);
  EXPECT_EQ(static_cast<uint8_t>(bytes[1]), 0);
  EXPECT_EQ(static_cast<uint8_t>(bytes[2]), 0);
  EXPECT_EQ(static_cast<uint8_t>(bytes[3]), 0);
  EXPECT_EQ(static_cast<uint8_t>(bytes[4]),
            static_cast<uint8_t>(FrameType::kPing));

  DecodeOutcome outcome = DecodeWhole(bytes);
  ASSERT_EQ(outcome.code, StatusCode::kOk);
  ASSERT_EQ(outcome.frames.size(), 1u);
  EXPECT_EQ(outcome.frames[0].type, static_cast<uint8_t>(FrameType::kPing));
  EXPECT_EQ(outcome.frames[0].payload, "abc");
}

TEST(NetFrameCodecTest, EmptyPayloadFrame) {
  DecodeOutcome outcome = DecodeWhole(FrameBytes(FrameType::kPong, ""));
  ASSERT_EQ(outcome.code, StatusCode::kOk);
  ASSERT_EQ(outcome.frames.size(), 1u);
  EXPECT_TRUE(outcome.frames[0].payload.empty());
}

TEST(NetFrameCodecTest, BackToBackFramesSplitEverywhere) {
  std::string bytes;
  bytes += FrameBytes(FrameType::kHello, "hello-payload");
  bytes += FrameBytes(FrameType::kMatch, std::string(300, 'x'));
  bytes += FrameBytes(FrameType::kPong, "");
  bytes += FrameBytes(FrameType::kBye, "b");
  ExpectSplitInvariant(bytes);

  DecodeOutcome canon = DecodeWhole(bytes);
  ASSERT_EQ(canon.frames.size(), 4u);
  EXPECT_EQ(canon.frames[1].payload.size(), 300u);
}

TEST(NetFrameCodecTest, TruncatedStreamsYieldNoFrame) {
  std::string whole = FrameBytes(FrameType::kPublish, "document-bytes");
  // Every proper prefix decodes zero frames and no error: the decoder
  // just waits for the rest.
  for (size_t len = 0; len < whole.size(); ++len) {
    DecodeOutcome outcome = DecodeWhole(whole.substr(0, len));
    EXPECT_EQ(outcome.code, StatusCode::kOk) << "prefix " << len;
    EXPECT_TRUE(outcome.frames.empty()) << "prefix " << len;
  }
}

TEST(NetFrameCodecTest, OversizedDeclaredLengthPoisonsAtHeader) {
  // A 4-byte header declaring more than max_frame_size must fail the
  // decoder BEFORE any payload arrives (it never buffers toward a bound
  // it would refuse), and the failure must be sticky.
  constexpr size_t kMax = 64;
  WireWriter writer;
  writer.PutU32(kMax + 1);
  FrameDecoder decoder(kMax);
  (void)decoder.Feed(writer.data());
  EXPECT_FALSE(decoder.Next().has_value());
  EXPECT_TRUE(decoder.failed());
  EXPECT_EQ(decoder.status().code(), StatusCode::kResourceExhausted);
  // Sticky: later (well-formed) bytes cannot resurrect the stream.
  (void)decoder.Feed(FrameBytes(FrameType::kPing, ""));
  EXPECT_FALSE(decoder.Next().has_value());
  EXPECT_TRUE(decoder.failed());
}

TEST(NetFrameCodecTest, MaxFrameSizeBoundaryIsInclusive) {
  constexpr size_t kMax = 128;
  std::string at_limit = FrameBytes(FrameType::kMatch, std::string(kMax, 'a'));
  DecodeOutcome ok = DecodeWhole(at_limit, kMax);
  EXPECT_EQ(ok.code, StatusCode::kOk);
  ASSERT_EQ(ok.frames.size(), 1u);
  EXPECT_EQ(ok.frames[0].payload.size(), kMax);

  std::string over = FrameBytes(FrameType::kMatch, std::string(kMax + 1, 'a'));
  DecodeOutcome bad = DecodeWhole(over, kMax);
  EXPECT_EQ(bad.code, StatusCode::kResourceExhausted);
  EXPECT_TRUE(bad.frames.empty());
}

TEST(NetFrameCodecTest, OversizedFailureIsSplitInvariant) {
  constexpr size_t kMax = 64;
  std::string bytes = FrameBytes(FrameType::kPing, "ok");
  bytes += FrameBytes(FrameType::kMatch, std::string(kMax + 7, 'z'));
  bytes += FrameBytes(FrameType::kPing, "never-reached");
  ExpectSplitInvariant(bytes, kMax);
  DecodeOutcome canon = DecodeWhole(bytes, kMax);
  ASSERT_EQ(canon.frames.size(), 1u);  // the good frame before the poison
  EXPECT_EQ(canon.code, StatusCode::kResourceExhausted);
}

TEST(NetFrameCodecTest, BufferedBytesTracksUndecodedInput) {
  FrameDecoder decoder(kDefaultMaxFrameSize);
  EXPECT_EQ(decoder.buffered_bytes(), 0u);
  (void)decoder.Feed(std::string_view("\x02\x00", 2));
  EXPECT_EQ(decoder.buffered_bytes(), 2u);
  (void)decoder.Next();  // still a partial header
  EXPECT_EQ(decoder.buffered_bytes(), 2u);
}

TEST(NetFrameCodecTest, LargeBurstThroughSmallChunksCompacts) {
  // Enough traffic to force the decoder through several internal
  // compactions; every frame must still come out intact and in order.
  std::string bytes;
  constexpr int kFrames = 200;
  for (int i = 0; i < kFrames; ++i) {
    bytes += FrameBytes(FrameType::kMatch,
                        "payload-" + std::to_string(i) + std::string(97, 'p'));
  }
  DecodeOutcome outcome = DecodeChunked(bytes, {1024});
  ASSERT_EQ(outcome.code, StatusCode::kOk);
  ASSERT_EQ(outcome.frames.size(), static_cast<size_t>(kFrames));
  for (int i = 0; i < kFrames; ++i) {
    EXPECT_EQ(outcome.frames[static_cast<size_t>(i)].payload.substr(0, 8 + 1),
              ("payload-" + std::to_string(i)).substr(0, 9));
  }
}

TEST(NetFrameCodecTest, FuzzGarbageIsChunkingInvariantAndCrashFree) {
  // Deterministic fuzz: random byte soups (sometimes seeded with valid
  // frame fragments) decoded whole vs. under random chunking. The decoder
  // may produce frames or fail — but identically for both feeds.
  std::mt19937 rng(0x5eed1u);
  constexpr size_t kMax = 512;
  for (int round = 0; round < 300; ++round) {
    std::string bytes;
    int pieces = 1 + static_cast<int>(rng() % 4);
    for (int p = 0; p < pieces; ++p) {
      if (rng() % 2 == 0) {
        size_t len = rng() % 64;
        for (size_t i = 0; i < len; ++i) {
          bytes += static_cast<char>(rng() & 0xff);
        }
      } else {
        bytes += EncodeFrame(static_cast<uint8_t>(1 + rng() % 14),
                             std::string(rng() % 80, 'f'));
      }
    }
    DecodeOutcome canon = DecodeWhole(bytes, kMax);
    std::vector<size_t> chunks;
    for (int c = 0; c < 4; ++c) chunks.push_back(1 + rng() % 37);
    DecodeOutcome chunked = DecodeChunked(bytes, chunks, kMax);
    ASSERT_EQ(canon, chunked) << "fuzz round " << round;
  }
}

TEST(NetWireCodecTest, ScalarAndStringRoundTrip) {
  WireWriter writer;
  writer.PutU8(0xab);
  writer.PutU32(0xdeadbeefu);
  writer.PutU64(0x0123456789abcdefull);
  writer.PutString("vitex");
  writer.PutString("");
  const std::string bytes = writer.Take();

  WireReader reader(bytes);
  auto u8 = reader.U8();
  ASSERT_TRUE(u8.ok());
  EXPECT_EQ(u8.value(), 0xab);
  auto u32 = reader.U32();
  ASSERT_TRUE(u32.ok());
  EXPECT_EQ(u32.value(), 0xdeadbeefu);
  auto u64 = reader.U64();
  ASSERT_TRUE(u64.ok());
  EXPECT_EQ(u64.value(), 0x0123456789abcdefull);
  auto s = reader.String();
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(s.value(), "vitex");
  auto empty = reader.String();
  ASSERT_TRUE(empty.ok());
  EXPECT_TRUE(empty.value().empty());
  EXPECT_TRUE(reader.AtEnd());
  EXPECT_TRUE(reader.ExpectEnd().ok());
}

TEST(NetWireCodecTest, TruncationFailsEveryPrefix) {
  WireWriter writer;
  writer.PutU64(42);
  writer.PutString("payload");
  const std::string bytes = writer.Take();
  for (size_t len = 0; len < bytes.size(); ++len) {
    WireReader reader(std::string_view(bytes).substr(0, len));
    auto u64 = reader.U64();
    if (!u64.ok()) {
      EXPECT_EQ(u64.status().code(), StatusCode::kParseError);
      continue;
    }
    auto s = reader.String();
    ASSERT_FALSE(s.ok()) << "prefix " << len;
    EXPECT_EQ(s.status().code(), StatusCode::kParseError);
  }
}

TEST(NetWireCodecTest, TrailingBytesAreAProtocolError) {
  WireWriter writer;
  writer.PutU32(7);
  writer.PutU8(1);  // the stray byte
  const std::string bytes = writer.Take();
  WireReader reader(bytes);
  ASSERT_TRUE(reader.U32().ok());
  EXPECT_FALSE(reader.AtEnd());
  EXPECT_EQ(reader.ExpectEnd().code(), StatusCode::kParseError);
}

// Encode* appends the COMPLETE frame; strip the header to get the
// payload a Decode* expects.
template <typename Msg, typename EncodeFn>
std::string PayloadOf(EncodeFn encode, const Msg& msg) {
  std::string whole;
  encode(&whole, msg);
  return whole.substr(kFrameHeaderSize);
}

TEST(NetProtocolTest, HelloWelcomeRoundTrip) {
  HelloMsg hello;
  hello.auth_token = "secret";
  auto decoded = DecodeHello(PayloadOf(EncodeHello, hello));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->magic, kProtocolMagic);
  EXPECT_EQ(decoded->version, kProtocolVersion);
  EXPECT_EQ(decoded->auth_token, "secret");

  WelcomeMsg welcome;
  welcome.server_banner = "vitex-test";
  auto w = DecodeWelcome(PayloadOf(EncodeWelcome, welcome));
  ASSERT_TRUE(w.ok());
  EXPECT_EQ(w->server_banner, "vitex-test");
}

TEST(NetProtocolTest, SubscribeLifecycleRoundTrip) {
  SubscribeMsg sub;
  sub.request_id = 9;
  sub.xpath = "//a/b[c]";
  auto s = DecodeSubscribe(PayloadOf(EncodeSubscribe, sub));
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(s->request_id, 9u);
  EXPECT_EQ(s->xpath, "//a/b[c]");

  SubscribedMsg subd;
  subd.request_id = 9;
  subd.subscription_id = 1234;
  auto sd = DecodeSubscribed(PayloadOf(EncodeSubscribed, subd));
  ASSERT_TRUE(sd.ok());
  EXPECT_EQ(sd->subscription_id, 1234u);

  UnsubscribeMsg unsub;
  unsub.request_id = 10;
  unsub.subscription_id = 1234;
  auto u = DecodeUnsubscribe(PayloadOf(EncodeUnsubscribe, unsub));
  ASSERT_TRUE(u.ok());
  EXPECT_EQ(u->subscription_id, 1234u);
}

TEST(NetProtocolTest, MatchInPlaceEncodeMatchesDecoder) {
  std::string out;
  EncodeMatch(&out, /*subscription_id=*/7, /*sequence=*/3, "<m>x</m>");
  EXPECT_EQ(out.size(), MatchFrameSize("<m>x</m>"));

  FrameDecoder decoder(kDefaultMaxFrameSize);
  (void)decoder.Feed(out);
  auto frame = decoder.Next();
  ASSERT_TRUE(frame.has_value());
  ASSERT_EQ(frame->type, static_cast<uint8_t>(FrameType::kMatch));
  auto match = DecodeMatch(frame->payload);
  ASSERT_TRUE(match.ok());
  EXPECT_EQ(match->subscription_id, 7u);
  EXPECT_EQ(match->sequence, 3u);
  EXPECT_EQ(match->fragment, "<m>x</m>");
}

TEST(NetProtocolTest, ErrorCarriesStatusCodeOneToOne) {
  // Every StatusCode the facade can produce must survive the wire
  // unchanged — the satellite-3 contract.
  for (StatusCode code :
       {StatusCode::kOk, StatusCode::kParseError, StatusCode::kUnsupported,
        StatusCode::kInvalidArgument, StatusCode::kResourceExhausted,
        StatusCode::kIoError, StatusCode::kInternal}) {
    ErrorMsg error;
    error.request_id = 5;
    error.code = WireCode(code);
    error.message = "m";
    auto decoded = DecodeError(PayloadOf(EncodeError, error));
    ASSERT_TRUE(decoded.ok());
    EXPECT_EQ(StatusFromWire(decoded->code, "m").code(), code);
  }
  // Unknown wire codes must not round-trip into something misleading.
  EXPECT_EQ(StatusFromWire(250, "m").code(), StatusCode::kInternal);
}

TEST(NetProtocolTest, ByeReasonValidation) {
  ByeMsg bye;
  bye.reason = ByeReason::kEvicted;
  bye.detail = "slow";
  auto ok = DecodeBye(PayloadOf(EncodeBye, bye));
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok->reason, ByeReason::kEvicted);
  EXPECT_EQ(ok->detail, "slow");

  // Out-of-range reason byte: reject, don't alias.
  WireWriter writer;
  writer.PutU8(99);
  writer.PutString("d");
  EXPECT_FALSE(DecodeBye(writer.data()).ok());
}

TEST(NetProtocolTest, EveryDecoderRejectsTruncationAndTrailingBytes) {
  struct Case {
    const char* name;
    std::string payload;
    std::function<bool(std::string_view)> decode_ok;
  };
  std::vector<Case> cases;
  {
    SubscribeMsg m;
    m.request_id = 1;
    m.xpath = "//x";
    cases.push_back({"subscribe", PayloadOf(EncodeSubscribe, m),
                     [](std::string_view p) { return DecodeSubscribe(p).ok(); }});
  }
  {
    PublishMsg m;
    m.request_id = 2;
    m.stream = kAnyStream;
    m.document = "<d/>";
    cases.push_back({"publish", PayloadOf(EncodePublish, m),
                     [](std::string_view p) { return DecodePublish(p).ok(); }});
  }
  {
    std::string whole;
    EncodeMatch(&whole, /*subscription_id=*/3, /*sequence=*/1, "<f/>");
    cases.push_back({"match", whole.substr(kFrameHeaderSize),
                     [](std::string_view p) { return DecodeMatch(p).ok(); }});
  }
  {
    ErrorMsg m;
    m.request_id = 4;
    m.code = WireCode(StatusCode::kParseError);
    m.message = "bad";
    cases.push_back({"error", PayloadOf(EncodeError, m),
                     [](std::string_view p) { return DecodeError(p).ok(); }});
  }
  for (const Case& c : cases) {
    ASSERT_TRUE(c.decode_ok(c.payload)) << c.name;
    for (size_t len = 0; len < c.payload.size(); ++len) {
      EXPECT_FALSE(c.decode_ok(std::string_view(c.payload).substr(0, len)))
          << c.name << " prefix " << len;
    }
    std::string padded = c.payload + "!";
    EXPECT_FALSE(c.decode_ok(padded)) << c.name << " trailing byte";
  }
}

}  // namespace
}  // namespace vitex::net
