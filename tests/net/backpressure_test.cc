// Slow-consumer backpressure and eviction under concurrency — the suite
// the tsan CI job runs against the net surface. The headline scenario is
// the DESIGN.md §13 state machine exercised from four sides at once:
// four publisher connections pushing documents, subscriber sessions
// churning (connect/subscribe/close) mid-stream, one stalled reader that
// subscribes and never reads, and a healthy reader draining everything.
// The stalled reader must be EVICTED (bounded cost, BYE(kEvicted)
// best-effort) without the healthy reader losing or duplicating a single
// MATCH, and without ingest stalling. The drop policy variant keeps the
// slow session alive and counts the gap instead.

#include <gtest/gtest.h>

#if defined(__linux__)

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "net/client.h"
#include "net/server.h"
#include "service/vitex.h"

namespace vitex::net {
namespace {

std::string Doc(int id) {
  // The hot fragment is padded so a few hundred documents dwarf the
  // kernel + outbuf buffering and the slow-consumer machinery actually
  // engages; the id prefix stays parseable ("h<id>.xxxx...").
  return "<doc><hot><v>h" + std::to_string(id) + "." +
         std::string(256, 'x') + "</v></hot>" + "<beat><v>b" +
         std::to_string(id) + "</v></beat></doc>";
}

class NetBackpressureTest : public ::testing::Test {
 protected:
  void Start(SlowConsumerPolicy policy, size_t outbuf_bytes) {
    vitex::ServiceOptions service_options;
    service_options.shard_count = 2;
    service_options.stream_count = 1;
    service_ = std::make_unique<vitex::Service>(service_options);

    ServerOptions server_options;
    server_options.max_outbuf_bytes = outbuf_bytes;
    server_options.slow_consumer_policy = policy;
    // Small kernel buffers on both sides make the outbuf cap — not TCP
    // autotuning — the binding constraint (same trick as the load
    // driver), so eviction is deterministic at test-sized volumes.
    server_options.so_sndbuf = 8 * 1024;
    auto started = Server::Start(service_.get(), server_options);
    ASSERT_TRUE(started.ok()) << started.status().ToString();
    server_ = std::move(started).value();
  }

  Result<std::unique_ptr<Client>> Connect(int so_rcvbuf = 0) {
    ClientOptions options;
    options.so_rcvbuf = so_rcvbuf;
    return Client::Connect("127.0.0.1", server_->port(), options);
  }

  std::unique_ptr<vitex::Service> service_;
  std::unique_ptr<Server> server_;
};

TEST_F(NetBackpressureTest, StalledReaderIsEvictedWhileEveryoneElseStreams) {
  Start(SlowConsumerPolicy::kDisconnect, /*outbuf_bytes=*/32 * 1024);
  constexpr int kPublishers = 4;
  constexpr int kDocsPerPublisher = 150;
  constexpr int kDocs = kPublishers * kDocsPerPublisher;

  // The stalled reader: subscribes to the hot topic, then never reads.
  auto stalled = Connect(/*so_rcvbuf=*/4 * 1024);
  ASSERT_TRUE(stalled.ok());
  ASSERT_TRUE((*stalled)->Subscribe("//hot/v/text()").ok());

  // The healthy reader: every document, exactly once, in order.
  auto healthy = Connect();
  ASSERT_TRUE(healthy.ok());
  ASSERT_TRUE((*healthy)->Subscribe("//hot/v/text()").ok());

  // Four publisher connections, each its own thread and session.
  std::atomic<int> published{0};
  std::atomic<bool> publish_failed{false};
  std::vector<std::thread> publishers;
  for (int p = 0; p < kPublishers; ++p) {
    publishers.emplace_back([&, p] {
      auto client =
          Client::Connect("127.0.0.1", server_->port(), ClientOptions{});
      if (!client.ok()) {
        publish_failed.store(true);
        return;
      }
      for (int d = p; d < kDocs; d += kPublishers) {
        if (!(*client)->Publish(Doc(d)).ok()) {
          publish_failed.store(true);
          return;
        }
        published.fetch_add(1);
      }
    });
  }

  // Churn: sessions connecting, subscribing and dying mid-stream, racing
  // the publishers and the eviction.
  std::atomic<bool> stop_churn{false};
  std::thread churner([&] {
    while (!stop_churn.load()) {
      auto client =
          Client::Connect("127.0.0.1", server_->port(), ClientOptions{});
      if (!client.ok()) continue;
      (void)(*client)->Subscribe("//beat/v/text()");
      auto match = (*client)->PollMatch(5);
      (void)match;
      // Session closes here, possibly with matches in flight.
    }
  });

  // Drain the healthy reader while everything else races.
  std::vector<std::string> got;
  while (got.size() < static_cast<size_t>(kDocs)) {
    auto match = (*healthy)->PollMatch(10000);
    ASSERT_TRUE(match.ok()) << match.status().ToString();
    if (!match->has_value()) break;  // 10s of silence: fail below
    got.push_back(std::move((*match)->fragment));
  }
  for (auto& t : publishers) t.join();
  stop_churn.store(true);
  churner.join();
  ASSERT_FALSE(publish_failed.load());

  // The healthy reader saw every hot fragment exactly once, in publish
  // order (single stream => per-subscription total order).
  ASSERT_EQ(got.size(), static_cast<size_t>(kDocs));
  std::vector<bool> seen(static_cast<size_t>(kDocs), false);
  for (const std::string& fragment : got) {
    ASSERT_EQ(fragment[0], 'h');
    int id = std::atoi(fragment.c_str() + 1);
    ASSERT_GE(id, 0);
    ASSERT_LT(id, kDocs);
    EXPECT_FALSE(seen[static_cast<size_t>(id)]) << "duplicate " << fragment;
    seen[static_cast<size_t>(id)] = true;
  }

  // The stalled reader was evicted, and the server says why.
  NetStatsSnapshot stats = server_->stats();
  EXPECT_GE(stats.connections_evicted, 1u);
  while (true) {
    auto match = (*stalled)->PollMatch(1000);
    if (!match.ok() || !match->has_value()) break;
  }
  EXPECT_FALSE((*stalled)->connected());
  if ((*stalled)->bye().has_value()) {
    EXPECT_EQ((*stalled)->bye()->reason, ByeReason::kEvicted);
  }
}

TEST_F(NetBackpressureTest, DropPolicyKeepsTheSessionAndCountsTheGap) {
  Start(SlowConsumerPolicy::kDropMatches, /*outbuf_bytes=*/8 * 1024);
  constexpr int kDocs = 400;

  auto slow = Connect(/*so_rcvbuf=*/4 * 1024);
  ASSERT_TRUE(slow.ok());
  ASSERT_TRUE((*slow)->Subscribe("//hot/v/text()").ok());

  auto publisher = Connect();
  ASSERT_TRUE(publisher.ok());
  for (int d = 0; d < kDocs; ++d) {
    ASSERT_TRUE((*publisher)->Publish(Doc(d)).ok()) << d;
  }
  ASSERT_TRUE(service_->Flush().ok());

  NetStatsSnapshot stats = server_->stats();
  EXPECT_EQ(stats.connections_evicted, 0u);
  EXPECT_GT(stats.matches_dropped, 0u);
  // The gap is visible service-side too.
  EXPECT_GT(service_->stats().results_overflowed, 0u);

  // The session survived: it can drain what did fit and still talk.
  int received = 0;
  while (true) {
    auto match = (*slow)->PollMatch(200);
    ASSERT_TRUE(match.ok()) << match.status().ToString();
    if (!match->has_value()) break;
    ++received;
  }
  EXPECT_GT(received, 0);
  EXPECT_LT(received, kDocs);
  EXPECT_TRUE((*slow)->Ping().ok());

  // Sequence stamps let a client *see* the gap; with one match per
  // document here, dropped + received accounts for every document.
  EXPECT_EQ(static_cast<uint64_t>(received) + stats.matches_dropped,
            static_cast<uint64_t>(kDocs));
}

TEST_F(NetBackpressureTest, EvictionCostIsBoundedByOutbufCap) {
  // High-watermark never exceeds cap + one control frame's worth: the
  // refusal happens BEFORE the append that would cross the cap.
  constexpr size_t kCap = 16 * 1024;
  Start(SlowConsumerPolicy::kDisconnect, kCap);

  auto stalled = Connect(/*so_rcvbuf=*/4 * 1024);
  ASSERT_TRUE(stalled.ok());
  ASSERT_TRUE((*stalled)->Subscribe("//hot/v/text()").ok());

  auto publisher = Connect();
  ASSERT_TRUE(publisher.ok());
  for (int d = 0; d < 400; ++d) {
    ASSERT_TRUE((*publisher)->Publish(Doc(d)).ok()) << d;
  }
  ASSERT_TRUE(service_->Flush().ok());

  NetStatsSnapshot stats = server_->stats();
  EXPECT_GE(stats.connections_evicted, 1u);
  EXPECT_LE(stats.outbuf_high_watermark, kCap);
}

}  // namespace
}  // namespace vitex::net

#else  // !defined(__linux__)

TEST(NetBackpressureTest, SkippedOffLinux) { GTEST_SKIP(); }

#endif  // defined(__linux__)
