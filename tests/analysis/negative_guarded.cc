// Thread-safety analysis proof, negative half (DESIGN.md §11): reading a
// GUARDED_BY field WITHOUT its mutex must be rejected under
// -Werror=thread-safety. tests/analysis/try_compile_proj asserts this TU
// does NOT compile — the gate that proves the annotations in
// src/common/thread_annotations.h are live attributes, not inert macros.
//
// Identical to positive_guarded.cc except for the missing lock in
// balance().

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace {

class Account {
 public:
  void Deposit(unsigned n) {
    vitex::MutexLock lock(mu_);
    balance_ += n;
  }

  unsigned balance() const {
    return balance_;  // racy read: no capability held — must not compile
  }

 private:
  mutable vitex::Mutex mu_;
  unsigned balance_ GUARDED_BY(mu_) = 0;
};

}  // namespace

unsigned vitex_analysis_negative_guarded() {
  Account account;
  account.Deposit(1);
  return account.balance();
}
