// Thread-safety analysis proof, positive half, for the SymbolTable freeze
// contract (DESIGN.md §9/§11): flipping the freeze phase while holding the
// table's writer capability compiles clean. Paired with
// negative_frozen_mint.cc, which drops the lock.
//
// Compiled by tests/analysis/try_compile_proj; never linked or run (so
// the missing interner.cc definitions are fine — STATIC_LIBRARY mode).

#include "common/interner.h"
#include "common/mutex.h"

void vitex_analysis_positive_frozen_mint() {
  vitex::SymbolTable table;
  vitex::WriterMutexLock lock(table.mu());
  table.Unfreeze();
  table.Intern("minted-under-writer-lock");
  table.Freeze();
}
