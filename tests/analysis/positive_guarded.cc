// Thread-safety analysis proof, positive half (DESIGN.md §11): a
// GUARDED_BY field accessed only under its mutex compiles clean with
// -Werror=thread-safety. Paired with negative_guarded.cc, which differs
// only in dropping the lock — if THIS file failed to build, the negative
// test would be failing for the wrong reason (broken includes, not a
// caught race).
//
// Compiled by tests/analysis/try_compile_proj; never linked or run.

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace {

class Account {
 public:
  void Deposit(unsigned n) {
    vitex::MutexLock lock(mu_);
    balance_ += n;
  }

  unsigned balance() const {
    vitex::MutexLock lock(mu_);
    return balance_;
  }

 private:
  mutable vitex::Mutex mu_;
  unsigned balance_ GUARDED_BY(mu_) = 0;
};

}  // namespace

unsigned vitex_analysis_positive_guarded() {
  Account account;
  account.Deposit(1);
  return account.balance();
}
