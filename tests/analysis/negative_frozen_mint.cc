// Thread-safety analysis proof, negative half, for the SymbolTable freeze
// contract (DESIGN.md §9/§11): the unfreeze → mint → refreeze sequence
// WITHOUT the table's writer capability must be rejected under
// -Werror=thread-safety. While frozen, parser streams read the table
// lock-free under mu() held shared; a writer that flipped the phase
// without taking mu() exclusively would mutate under their feet. The
// REQUIRES annotations on Freeze()/Unfreeze() make that a compile error —
// this TU is the proof that they do.
//
// Identical to positive_frozen_mint.cc except for the missing
// WriterMutexLock.

#include "common/interner.h"
#include "common/mutex.h"

void vitex_analysis_negative_frozen_mint() {
  vitex::SymbolTable table;
  table.Unfreeze();  // no writer capability — must not compile
  table.Intern("minted-without-writer-lock");
  table.Freeze();
}
