#include "xpath/query.h"

#include <gtest/gtest.h>

namespace vitex::xpath {
namespace {

Query MustCompile(std::string_view q) {
  auto r = ParseAndCompile(q);
  EXPECT_TRUE(r.ok()) << q << ": " << r.status();
  return std::move(r).value();
}

TEST(FormulaTest, TrueAlwaysHolds) {
  EXPECT_TRUE(Formula::True().Evaluate(0));
  EXPECT_TRUE(Formula::True().Evaluate(~0ull));
}

TEST(FormulaTest, AtomChecksBit) {
  Formula f = Formula::Atom(3);
  EXPECT_FALSE(f.Evaluate(0));
  EXPECT_TRUE(f.Evaluate(1ull << 3));
  EXPECT_FALSE(f.Evaluate(1ull << 2));
}

TEST(FormulaTest, AndOrNotSemantics) {
  std::vector<Formula> ab;
  ab.push_back(Formula::Atom(0));
  ab.push_back(Formula::Atom(1));
  Formula both = Formula::And(std::move(ab));
  EXPECT_TRUE(both.Evaluate(0b11));
  EXPECT_FALSE(both.Evaluate(0b01));

  std::vector<Formula> cd;
  cd.push_back(Formula::Atom(0));
  cd.push_back(Formula::Atom(1));
  Formula either = Formula::Or(std::move(cd));
  EXPECT_TRUE(either.Evaluate(0b10));
  EXPECT_FALSE(either.Evaluate(0b00));

  Formula neither = Formula::Not(Formula::Atom(0));
  EXPECT_TRUE(neither.Evaluate(0b10));
  EXPECT_FALSE(neither.Evaluate(0b01));
}

TEST(FormulaTest, SingletonAndOrCollapse) {
  std::vector<Formula> one;
  one.push_back(Formula::Atom(5));
  Formula f = Formula::And(std::move(one));
  EXPECT_EQ(f.kind, Formula::Kind::kAtom);
}

TEST(FormulaTest, ContainsNot) {
  EXPECT_FALSE(Formula::Atom(0).ContainsNot());
  std::vector<Formula> fs;
  fs.push_back(Formula::Atom(0));
  fs.push_back(Formula::Not(Formula::Atom(1)));
  EXPECT_TRUE(Formula::And(std::move(fs)).ContainsNot());
}

TEST(CompileTest, SingleStep) {
  Query q = MustCompile("//a");
  EXPECT_EQ(q.size(), 1u);
  EXPECT_EQ(q.root(), q.output());
  EXPECT_TRUE(q.root()->is_output);
  EXPECT_TRUE(q.root()->on_main_path);
  EXPECT_EQ(q.root()->axis, Axis::kDescendant);
}

TEST(CompileTest, MainPathChain) {
  Query q = MustCompile("/a//b/c");
  EXPECT_EQ(q.size(), 3u);
  const QueryNode* a = q.root();
  EXPECT_EQ(a->name, "a");
  ASSERT_EQ(a->children.size(), 1u);
  const QueryNode* b = a->children[0];
  EXPECT_EQ(b->name, "b");
  EXPECT_EQ(b->axis, Axis::kDescendant);
  const QueryNode* c = b->children[0];
  EXPECT_TRUE(c->is_output);
  // Non-output main nodes require their main child.
  EXPECT_EQ(a->formula.kind, Formula::Kind::kAtom);
  EXPECT_EQ(b->formula.kind, Formula::Kind::kAtom);
  EXPECT_EQ(c->formula.kind, Formula::Kind::kTrue);
}

TEST(CompileTest, PaperQueryTwig) {
  Query q = MustCompile("//section[author]//table[position]//cell");
  EXPECT_EQ(q.size(), 5u);
  const QueryNode* section = q.root();
  ASSERT_EQ(section->children.size(), 2u);
  // Predicate child `author` and main child `table`, in compile order.
  const QueryNode* author = section->children[0];
  EXPECT_EQ(author->name, "author");
  EXPECT_FALSE(author->on_main_path);
  const QueryNode* table = section->children[1];
  EXPECT_EQ(table->name, "table");
  EXPECT_TRUE(table->on_main_path);
  // section requires both.
  EXPECT_EQ(section->formula.kind, Formula::Kind::kAnd);
  const QueryNode* cell = q.output();
  EXPECT_EQ(cell->name, "cell");
  EXPECT_EQ(cell->parent, table);
}

TEST(CompileTest, PreorderIds) {
  Query q = MustCompile("//a[b][c]//d");
  for (size_t i = 0; i < q.size(); ++i) {
    EXPECT_EQ(q.nodes()[i]->id, static_cast<int>(i));
    if (q.nodes()[i]->parent != nullptr) {
      EXPECT_LT(q.nodes()[i]->parent->id, q.nodes()[i]->id);
    }
  }
}

TEST(CompileTest, AttributeOutput) {
  Query q = MustCompile("//ProteinEntry[reference]/@id");
  const QueryNode* id = q.output();
  EXPECT_TRUE(id->IsAttributeNode());
  EXPECT_EQ(id->name, "id");
  EXPECT_FALSE(id->descendant_attribute);
  const QueryNode* pe = q.root();
  EXPECT_EQ(pe->children.size(), 2u);
}

TEST(CompileTest, DescendantAttributeFlag) {
  Query q = MustCompile("//a//@id");
  EXPECT_TRUE(q.output()->descendant_attribute);
}

TEST(CompileTest, ValueComparisonOnElementDesugarsToText) {
  Query q = MustCompile("//a[b = 'x']");
  const QueryNode* a = q.root();
  ASSERT_EQ(a->children.size(), 1u);
  const QueryNode* b = a->children[0];
  EXPECT_EQ(b->name, "b");
  ASSERT_EQ(b->children.size(), 1u);
  const QueryNode* text = b->children[0];
  EXPECT_TRUE(text->IsTextNode());
  EXPECT_EQ(text->value_op, CompareOp::kEq);
  EXPECT_EQ(text->literal, "x");
  // b requires its text child.
  EXPECT_EQ(b->formula.kind, Formula::Kind::kAtom);
}

TEST(CompileTest, SelfComparisonDesugarsToText) {
  Query q = MustCompile("//a[. = '5']");
  const QueryNode* a = q.root();
  ASSERT_EQ(a->children.size(), 1u);
  EXPECT_TRUE(a->children[0]->IsTextNode());
}

TEST(CompileTest, AttributeComparisonStaysOnAttribute) {
  Query q = MustCompile("//a[@id != 'x']");
  const QueryNode* attr = q.root()->children[0];
  EXPECT_TRUE(attr->IsAttributeNode());
  EXPECT_EQ(attr->value_op, CompareOp::kNe);
}

TEST(CompileTest, NumericLiteralMarked) {
  Query q = MustCompile("//a[b >= 3.5]");
  const QueryNode* text = q.root()->children[0]->children[0];
  EXPECT_TRUE(text->literal_is_number);
  EXPECT_DOUBLE_EQ(text->number, 3.5);
}

TEST(CompileTest, OrFormulaShape) {
  Query q = MustCompile("//a[b or c]");
  const QueryNode* a = q.root();
  EXPECT_EQ(a->children.size(), 2u);
  EXPECT_EQ(a->formula.kind, Formula::Kind::kOr);
  EXPECT_FALSE(q.has_negation());
}

TEST(CompileTest, NotFormulaShape) {
  Query q = MustCompile("//a[not(b)]");
  EXPECT_TRUE(q.has_negation());
  EXPECT_EQ(q.root()->formula.kind, Formula::Kind::kNot);
}

TEST(CompileTest, AndOfPredicatesAndMainChild) {
  Query q = MustCompile("//a[b]//c");
  const QueryNode* a = q.root();
  // Formula must require both b (predicate) and c (main child).
  ASSERT_EQ(a->children.size(), 2u);
  uint64_t b_bit = 1ull << a->children[0]->index_in_parent;
  uint64_t c_bit = 1ull << a->children[1]->index_in_parent;
  EXPECT_TRUE(a->formula.Evaluate(b_bit | c_bit));
  EXPECT_FALSE(a->formula.Evaluate(b_bit));
  EXPECT_FALSE(a->formula.Evaluate(c_bit));
}

TEST(CompileTest, NestedPredicatePath) {
  Query q = MustCompile("//a[b/c]");
  const QueryNode* b = q.root()->children[0];
  EXPECT_EQ(b->name, "b");
  ASSERT_EQ(b->children.size(), 1u);
  EXPECT_EQ(b->children[0]->name, "c");
  // b requires c.
  EXPECT_FALSE(b->formula.Evaluate(0));
  EXPECT_TRUE(b->formula.Evaluate(1));
}

TEST(CompileTest, PredicateInsidePredicatePath) {
  Query q = MustCompile("//a[b[c]/d]");
  const QueryNode* b = q.root()->children[0];
  ASSERT_EQ(b->children.size(), 2u);
  // b requires both c (nested predicate) and d (chain continuation).
  EXPECT_TRUE(b->formula.Evaluate(0b11));
  EXPECT_FALSE(b->formula.Evaluate(0b01));
  EXPECT_FALSE(b->formula.Evaluate(0b10));
}

TEST(CompileTest, TextOutput) {
  Query q = MustCompile("//a/text()");
  EXPECT_TRUE(q.output()->IsTextNode());
  EXPECT_EQ(q.output()->axis, Axis::kChild);
}

TEST(CompileTest, WildcardSteps) {
  Query q = MustCompile("//*[b]/*");
  EXPECT_EQ(q.root()->test, NodeTestKind::kWildcard);
  EXPECT_EQ(q.output()->test, NodeTestKind::kWildcard);
}

TEST(CompileTest, SourcePreserved) {
  Query q = MustCompile("//a[b]");
  EXPECT_EQ(q.source(), "//a[b]");
}

TEST(CompileTest, ToStringMentionsOutput) {
  Query q = MustCompile("//a//b");
  std::string s = q.ToString();
  EXPECT_NE(s.find("OUTPUT"), std::string::npos);
}

TEST(CompileTest, CompareValueStringEquality) {
  Query q = MustCompile("//a[text() = 'abc']");
  const QueryNode* t = q.root()->children[0];
  EXPECT_TRUE(t->CompareValue("abc"));
  EXPECT_FALSE(t->CompareValue("abd"));
  EXPECT_FALSE(t->CompareValue(""));
}

TEST(CompileTest, CompareValueNumericEquality) {
  Query q = MustCompile("//a[text() = 5]");
  const QueryNode* t = q.root()->children[0];
  EXPECT_TRUE(t->CompareValue("5"));
  EXPECT_TRUE(t->CompareValue("5.0"));
  EXPECT_FALSE(t->CompareValue("5x"));
  EXPECT_FALSE(t->CompareValue("abc"));
}

TEST(CompileTest, CompareValueRelational) {
  Query q = MustCompile("//a[text() < 10]");
  const QueryNode* t = q.root()->children[0];
  EXPECT_TRUE(t->CompareValue("9.5"));
  EXPECT_FALSE(t->CompareValue("10"));
  EXPECT_FALSE(t->CompareValue("notanumber"));
}

TEST(CompileTest, CompareValueNotEqualsNumber) {
  Query q = MustCompile("//a[text() != 5]");
  const QueryNode* t = q.root()->children[0];
  EXPECT_FALSE(t->CompareValue("5"));
  EXPECT_TRUE(t->CompareValue("6"));
  // Non-numeric text is unequal to a number.
  EXPECT_TRUE(t->CompareValue("abc"));
}

}  // namespace
}  // namespace vitex::xpath
