#include "xpath/parser.h"

#include <gtest/gtest.h>

namespace vitex::xpath {
namespace {

Path MustParse(std::string_view q) {
  auto r = ParseXPath(q);
  EXPECT_TRUE(r.ok()) << q << ": " << r.status();
  return std::move(r).value();
}

TEST(ParserTest, SingleChildStep) {
  Path p = MustParse("/a");
  ASSERT_EQ(p.steps.size(), 1u);
  EXPECT_TRUE(p.absolute);
  EXPECT_EQ(p.steps[0].axis, Axis::kChild);
  EXPECT_EQ(p.steps[0].test, NodeTestKind::kName);
  EXPECT_EQ(p.steps[0].name, "a");
}

TEST(ParserTest, SingleDescendantStep) {
  Path p = MustParse("//a");
  ASSERT_EQ(p.steps.size(), 1u);
  EXPECT_EQ(p.steps[0].axis, Axis::kDescendant);
}

TEST(ParserTest, MixedAxes) {
  Path p = MustParse("/a//b/c");
  ASSERT_EQ(p.steps.size(), 3u);
  EXPECT_EQ(p.steps[0].axis, Axis::kChild);
  EXPECT_EQ(p.steps[1].axis, Axis::kDescendant);
  EXPECT_EQ(p.steps[2].axis, Axis::kChild);
}

TEST(ParserTest, Wildcard) {
  Path p = MustParse("//*");
  EXPECT_EQ(p.steps[0].test, NodeTestKind::kWildcard);
}

TEST(ParserTest, AttributeStep) {
  Path p = MustParse("//a/@id");
  ASSERT_EQ(p.steps.size(), 2u);
  EXPECT_EQ(p.steps[1].axis, Axis::kAttribute);
  EXPECT_EQ(p.steps[1].name, "id");
  EXPECT_FALSE(p.steps[1].descendant_attribute);
}

TEST(ParserTest, DescendantAttributeStep) {
  Path p = MustParse("//a//@id");
  ASSERT_EQ(p.steps.size(), 2u);
  EXPECT_EQ(p.steps[1].axis, Axis::kAttribute);
  EXPECT_TRUE(p.steps[1].descendant_attribute);
}

TEST(ParserTest, AttributeWildcard) {
  Path p = MustParse("//a/@*");
  EXPECT_EQ(p.steps[1].test, NodeTestKind::kWildcard);
}

TEST(ParserTest, TextStep) {
  Path p = MustParse("//a/text()");
  ASSERT_EQ(p.steps.size(), 2u);
  EXPECT_EQ(p.steps[1].test, NodeTestKind::kText);
}

TEST(ParserTest, ElementNamedTextWithoutParens) {
  Path p = MustParse("//text");
  EXPECT_EQ(p.steps[0].test, NodeTestKind::kName);
  EXPECT_EQ(p.steps[0].name, "text");
}

TEST(ParserTest, PaperQueryStructure) {
  Path p = MustParse("//section[author]//table[position]//cell");
  ASSERT_EQ(p.steps.size(), 3u);
  EXPECT_EQ(p.steps[0].name, "section");
  ASSERT_EQ(p.steps[0].predicates.size(), 1u);
  EXPECT_EQ(p.steps[0].predicates[0]->kind, PredExpr::Kind::kPath);
  EXPECT_EQ(p.steps[0].predicates[0]->path.steps[0].name, "author");
  EXPECT_EQ(p.steps[2].name, "cell");
  EXPECT_TRUE(p.steps[2].predicates.empty());
}

TEST(ParserTest, ProteinQuery) {
  Path p = MustParse("//ProteinEntry[reference]/@id");
  ASSERT_EQ(p.steps.size(), 2u);
  EXPECT_EQ(p.steps[0].name, "ProteinEntry");
  EXPECT_EQ(p.steps[1].axis, Axis::kAttribute);
}

TEST(ParserTest, MultiplePredicatesOnOneStep) {
  Path p = MustParse("//a[b][c]");
  ASSERT_EQ(p.steps[0].predicates.size(), 2u);
}

TEST(ParserTest, PredicateWithNestedPath) {
  Path p = MustParse("//a[b/c//d]");
  const PredExpr& pred = *p.steps[0].predicates[0];
  ASSERT_EQ(pred.path.steps.size(), 3u);
  EXPECT_EQ(pred.path.steps[0].axis, Axis::kChild);
  EXPECT_EQ(pred.path.steps[2].axis, Axis::kDescendant);
}

TEST(ParserTest, PredicateLeadingDoubleSlashIsRelative) {
  Path p = MustParse("//a[//b]");
  const PredExpr& pred = *p.steps[0].predicates[0];
  EXPECT_FALSE(pred.path.absolute);
  EXPECT_EQ(pred.path.steps[0].axis, Axis::kDescendant);
}

TEST(ParserTest, PredicateDotSlashPath) {
  Path p = MustParse("//a[./b]");
  EXPECT_EQ(p.steps[0].predicates[0]->path.steps[0].name, "b");
  Path p2 = MustParse("//a[.//b]");
  EXPECT_EQ(p2.steps[0].predicates[0]->path.steps[0].axis, Axis::kDescendant);
}

TEST(ParserTest, ValueComparisonString) {
  Path p = MustParse("//a[b = 'x']");
  const PredExpr& pred = *p.steps[0].predicates[0];
  EXPECT_EQ(pred.kind, PredExpr::Kind::kCompare);
  EXPECT_EQ(pred.op, CompareOp::kEq);
  EXPECT_EQ(pred.literal, "x");
  EXPECT_FALSE(pred.literal_is_number);
}

TEST(ParserTest, ValueComparisonNumber) {
  Path p = MustParse("//a[b > 10]");
  const PredExpr& pred = *p.steps[0].predicates[0];
  EXPECT_EQ(pred.op, CompareOp::kGt);
  EXPECT_TRUE(pred.literal_is_number);
  EXPECT_DOUBLE_EQ(pred.number, 10.0);
}

TEST(ParserTest, SelfComparison) {
  Path p = MustParse("//a[. = 'x']");
  const PredExpr& pred = *p.steps[0].predicates[0];
  EXPECT_EQ(pred.kind, PredExpr::Kind::kCompare);
  EXPECT_TRUE(pred.path.steps.empty());
}

TEST(ParserTest, AttributeComparison) {
  Path p = MustParse("//a[@id = 'x7']");
  const PredExpr& pred = *p.steps[0].predicates[0];
  EXPECT_EQ(pred.path.steps[0].axis, Axis::kAttribute);
  EXPECT_EQ(pred.path.steps[0].name, "id");
}

TEST(ParserTest, TextComparison) {
  Path p = MustParse("//a[text() = 'x']");
  const PredExpr& pred = *p.steps[0].predicates[0];
  EXPECT_EQ(pred.path.steps[0].test, NodeTestKind::kText);
}

TEST(ParserTest, LiteralFirstComparisonNormalized) {
  // '5 < b' must become 'b > 5'.
  Path p = MustParse("//a[5 < b]");
  const PredExpr& pred = *p.steps[0].predicates[0];
  EXPECT_EQ(pred.kind, PredExpr::Kind::kCompare);
  EXPECT_EQ(pred.op, CompareOp::kGt);
  EXPECT_EQ(pred.path.steps[0].name, "b");
  EXPECT_DOUBLE_EQ(pred.number, 5.0);
}

TEST(ParserTest, AndOrNot) {
  Path p = MustParse("//a[b and c or not(d)]");
  const PredExpr& pred = *p.steps[0].predicates[0];
  // 'and' binds tighter than 'or'.
  EXPECT_EQ(pred.kind, PredExpr::Kind::kOr);
  EXPECT_EQ(pred.left->kind, PredExpr::Kind::kAnd);
  EXPECT_EQ(pred.right->kind, PredExpr::Kind::kNot);
}

TEST(ParserTest, ParenthesesOverridePrecedence) {
  Path p = MustParse("//a[b and (c or d)]");
  const PredExpr& pred = *p.steps[0].predicates[0];
  EXPECT_EQ(pred.kind, PredExpr::Kind::kAnd);
  EXPECT_EQ(pred.right->kind, PredExpr::Kind::kOr);
}

TEST(ParserTest, NotIsNameUnlessCalled) {
  // An element named 'not' is legal.
  Path p = MustParse("//not");
  EXPECT_EQ(p.steps[0].name, "not");
}

TEST(ParserTest, NestedPredicates) {
  Path p = MustParse("//a[b[c]]");
  const PredExpr& outer = *p.steps[0].predicates[0];
  ASSERT_EQ(outer.path.steps.size(), 1u);
  ASSERT_EQ(outer.path.steps[0].predicates.size(), 1u);
  EXPECT_EQ(outer.path.steps[0].predicates[0]->path.steps[0].name, "c");
}

TEST(ParserTest, RoundTripToString) {
  const char* queries[] = {
      "//section[author]//table[position]//cell",
      "/a/b/c",
      "//a[b = 'x']",
      "//ProteinEntry[reference]/@id",
      "//a[not(b)]",
      "//a/text()",
  };
  for (const char* q : queries) {
    Path p1 = MustParse(q);
    std::string rendered = PathToString(p1);
    Path p2 = MustParse(rendered);
    EXPECT_EQ(PathToString(p2), rendered) << q;
  }
}

TEST(ParserTest, ClonePreservesStructure) {
  Path p = MustParse("//a[b and not(c > 3)]//d/@id");
  Path clone = ClonePath(p);
  EXPECT_EQ(PathToString(p), PathToString(clone));
}

// --- Errors -----------------------------------------------------------------

TEST(ParserErrorTest, MustStartWithSlash) {
  EXPECT_TRUE(ParseXPath("a/b").status().IsParseError());
}

TEST(ParserErrorTest, EmptyQuery) {
  EXPECT_TRUE(ParseXPath("").status().IsParseError());
  EXPECT_TRUE(ParseXPath("/").status().IsParseError());
}

TEST(ParserErrorTest, TrailingGarbage) {
  EXPECT_TRUE(ParseXPath("//a]").status().IsParseError());
  EXPECT_TRUE(ParseXPath("//a b").status().IsParseError());
}

TEST(ParserErrorTest, StepsAfterAttribute) {
  EXPECT_TRUE(ParseXPath("//a/@id/b").status().IsParseError());
}

TEST(ParserErrorTest, StepsAfterText) {
  EXPECT_TRUE(ParseXPath("//a/text()/b").status().IsParseError());
}

TEST(ParserErrorTest, PredicateOnText) {
  EXPECT_TRUE(ParseXPath("//a/text()[b]").status().IsParseError());
}

TEST(ParserErrorTest, AbsolutePathInPredicate) {
  EXPECT_TRUE(ParseXPath("//a[/b]").status().IsParseError());
}

TEST(ParserErrorTest, UnclosedPredicate) {
  EXPECT_TRUE(ParseXPath("//a[b").status().IsParseError());
}

TEST(ParserErrorTest, ComparisonNeedsLiteralRhs) {
  EXPECT_TRUE(ParseXPath("//a[b = c]").status().IsParseError());
}

TEST(ParserErrorTest, BareDotPredicate) {
  EXPECT_TRUE(ParseXPath("//a[.]").status().IsParseError());
}

TEST(ParserErrorTest, MissingAttributeName) {
  EXPECT_TRUE(ParseXPath("//a/@").status().IsParseError());
  EXPECT_TRUE(ParseXPath("//a/@[b]").status().IsParseError());
}

}  // namespace
}  // namespace vitex::xpath
