#include "xpath/rewrite.h"

#include <gtest/gtest.h>

#include "baseline/dom_evaluator.h"
#include "common/random.h"
#include "twigm/engine.h"
#include "workload/random_generator.h"
#include "xpath/parser.h"
#include "xpath/query.h"

namespace vitex::xpath {
namespace {

std::string Rewritten(std::string_view q, RewriteStats* stats = nullptr) {
  auto r = RewriteQueryText(q, stats);
  EXPECT_TRUE(r.ok()) << q << ": " << r.status();
  return r.value_or("");
}

TEST(RewriteTest, IdentityOnSimpleQueries) {
  for (const char* q : {"//a", "/a/b//c", "//a[b]//c", "//a[@id = 'x']"}) {
    RewriteStats stats;
    std::string out = Rewritten(q, &stats);
    EXPECT_EQ(out, q);
    EXPECT_EQ(stats.total(), 0u);
  }
}

TEST(RewriteTest, DuplicatePredicatesRemoved) {
  RewriteStats stats;
  EXPECT_EQ(Rewritten("//a[b][b]", &stats), "//a[b]");
  EXPECT_EQ(stats.duplicate_predicates_removed, 1u);
}

TEST(RewriteTest, DuplicatePredicatesDeepEquality) {
  RewriteStats stats;
  EXPECT_EQ(Rewritten("//a[b/c][b/c][d]", &stats), "//a[b/c][d]");
  EXPECT_EQ(stats.duplicate_predicates_removed, 1u);
}

TEST(RewriteTest, IdempotentAnd) {
  RewriteStats stats;
  EXPECT_EQ(Rewritten("//a[b and b]", &stats), "//a[b]");
  EXPECT_EQ(stats.idempotent_operands_removed, 1u);
}

TEST(RewriteTest, IdempotentOr) {
  RewriteStats stats;
  EXPECT_EQ(Rewritten("//a[b or b or b]", &stats), "//a[b]");
  EXPECT_EQ(stats.idempotent_operands_removed, 2u);
}

TEST(RewriteTest, DoubleNegation) {
  RewriteStats stats;
  EXPECT_EQ(Rewritten("//a[not(not(b))]", &stats), "//a[b]");
  EXPECT_EQ(stats.double_negations_removed, 1u);
}

TEST(RewriteTest, QuadrupleNegation) {
  EXPECT_EQ(Rewritten("//a[not(not(not(not(b))))]"), "//a[b]");
}

TEST(RewriteTest, SingleNegationKept) {
  EXPECT_EQ(Rewritten("//a[not(b)]"), "//a[not(b)]");
}

TEST(RewriteTest, AbsorptionAnd) {
  RewriteStats stats;
  // b and (b or c) == b.
  EXPECT_EQ(Rewritten("//a[b and (b or c)]", &stats), "//a[b]");
  EXPECT_EQ(stats.absorptions, 1u);
}

TEST(RewriteTest, AbsorptionOr) {
  RewriteStats stats;
  // b or (b and c) == b.
  EXPECT_EQ(Rewritten("//a[b or (b and c)]", &stats), "//a[b]");
  EXPECT_EQ(stats.absorptions, 1u);
}

TEST(RewriteTest, NoAbsorptionWhenNotContained) {
  std::string out = Rewritten("//a[b and (c or d)]");
  EXPECT_NE(out.find("b"), std::string::npos);
  EXPECT_NE(out.find("c"), std::string::npos);
  EXPECT_NE(out.find("d"), std::string::npos);
}

TEST(RewriteTest, NestedPredicatesRewritten) {
  EXPECT_EQ(Rewritten("//a[b[c and c]]"), "//a[b[c]]");
}

TEST(RewriteTest, PredicatePathStepsRewritten) {
  EXPECT_EQ(Rewritten("//a[b[d][d]/c]"), "//a[b[d]/c]");
}

TEST(RewriteTest, RewrittenQueryStillCompiles) {
  Random rng(12345);
  workload::RandomQueryOptions options;
  for (int i = 0; i < 100; ++i) {
    std::string q = workload::GenerateRandomQuery(options, &rng);
    auto rewritten = RewriteQueryText(q);
    ASSERT_TRUE(rewritten.ok()) << q;
    auto compiled = ParseAndCompile(rewritten.value());
    EXPECT_TRUE(compiled.ok()) << q << " -> " << rewritten.value();
  }
}

TEST(RewriteTest, RewritePreservesSemantics) {
  // Differential check: original vs rewritten query on random documents.
  Random rng(2222);
  workload::RandomDocOptions doc_options;
  doc_options.max_elements = 60;
  workload::RandomQueryOptions query_options;
  query_options.not_probability = 0.3;
  query_options.or_probability = 0.3;
  for (int i = 0; i < 30; ++i) {
    std::string doc = workload::GenerateRandomDocument(doc_options, &rng);
    std::string q = workload::GenerateRandomQuery(query_options, &rng);
    auto rewritten = RewriteQueryText(q);
    ASSERT_TRUE(rewritten.ok());

    twigm::VectorResultCollector original_results, rewritten_results;
    auto e1 = twigm::Engine::Create(q, &original_results);
    auto e2 = twigm::Engine::Create(rewritten.value(), &rewritten_results);
    ASSERT_TRUE(e1.ok());
    ASSERT_TRUE(e2.ok());
    ASSERT_TRUE(e1->RunString(doc).ok());
    ASSERT_TRUE(e2->RunString(doc).ok());
    EXPECT_EQ(original_results.SortedFragments(),
              rewritten_results.SortedFragments())
        << q << " -> " << rewritten.value() << "\ndoc: " << doc;
  }
}

TEST(RewriteTest, NeverGrowsTheQuery) {
  Random rng(3333);
  workload::RandomQueryOptions options;
  options.not_probability = 0.3;
  for (int i = 0; i < 100; ++i) {
    std::string q = workload::GenerateRandomQuery(options, &rng);
    auto original = ParseAndCompile(q);
    auto rewritten_text = RewriteQueryText(q);
    ASSERT_TRUE(original.ok());
    ASSERT_TRUE(rewritten_text.ok());
    auto rewritten = ParseAndCompile(rewritten_text.value());
    ASSERT_TRUE(rewritten.ok());
    EXPECT_LE(rewritten->size(), original->size())
        << q << " -> " << rewritten_text.value();
  }
}

}  // namespace
}  // namespace vitex::xpath
