// Table-driven tests for QueryNode::CompareValue — the single value-
// comparison routine every route shares (TwigM, the multi-query dispatcher,
// the DOM oracle, the naive matcher). The satellite fix this pins:
//   * the RHS literal is coerced once at compile time, never re-parsed per
//     event (literal_numeric / number on QueryNode);
//   * node text is whitespace-trimmed per XPath number() before numeric
//     coercion (" 10 " = 10 holds);
//   * whitespace-only and empty text is NOT numeric (the old strtod-based
//     check treated "   " as 0);
//   * != against a numeric literal uses the same string fallback as = for
//     non-numeric text, so = and != are exact complements.

#include <gtest/gtest.h>

#include <optional>
#include <string>

#include "common/string_util.h"
#include "xpath/query.h"

namespace vitex::xpath {
namespace {

// Compiles `[text() OP]` under //a and returns the text node carrying the
// value test, so the table exercises the real compile-time literal path.
const QueryNode* CompileValueTest(const std::string& predicate,
                                  std::optional<Query>* storage) {
  auto q = ParseAndCompile("//a[" + predicate + "]");
  EXPECT_TRUE(q.ok()) << predicate << ": " << q.status();
  storage->emplace(std::move(q).value());
  for (const auto& node : (*storage)->nodes()) {
    if (node->value_op != CompareOp::kNone) return node.get();
  }
  ADD_FAILURE() << "no value test compiled for " << predicate;
  return nullptr;
}

struct Case {
  const char* predicate;
  const char* value;
  bool want;
};

TEST(CompareValueTest, NumericLiteralTable) {
  const Case cases[] = {
      // Equality against a numeric literal: numeric when the text coerces.
      {"text() = 10", "10", true},
      {"text() = 10", " 10 ", true},    // number() trims whitespace
      {"text() = 10", "10.0", true},    // numeric, not string, equality
      {"text() = 10", "1e1", true},     // exponent form coerces
      {"text() = 10", "abc", false},    // non-numeric: string fallback
      {"text() = 10", "", false},
      {"text() = 10", "  ", false},     // whitespace-only is NOT 0
      {"text() = 0", "  ", false},      // ...the old strtod path said true
      {"text() = 10", "10x", false},
      // != is the exact complement, including the string fallback.
      {"text() != 10", "10", false},
      {"text() != 10", " 10 ", false},
      {"text() != 10", "10.0", false},
      {"text() != 10", "1e1", false},
      {"text() != 10", "abc", true},
      {"text() != 10", "", true},
      // The string fallback compares against the literal's source text.
      {"text() != 10", "10.00", false},  // still numeric: coerces to 10
      // Relational: numeric on both sides or never satisfied.
      {"text() < 10", "9.5", true},
      {"text() < 10", " 9 ", true},
      {"text() < 10", "abc", false},
      {"text() < 10", "", false},
      {"text() <= 10", "10", true},
      {"text() > 10", "1e2", true},
      {"text() >= 10", "9.999", false},
  };
  for (const Case& c : cases) {
    std::optional<Query> storage;
    const QueryNode* node = CompileValueTest(c.predicate, &storage);
    ASSERT_NE(node, nullptr);
    EXPECT_EQ(node->CompareValue(c.value), c.want)
        << "[" << c.predicate << "] on \"" << c.value << "\"";
  }
}

TEST(CompareValueTest, StringLiteralTable) {
  const Case cases[] = {
      // String literals compare as strings for =/!=, untrimmed.
      {"text() = '10'", "10", true},
      {"text() = '10'", " 10 ", false},
      {"text() = '10'", "10.0", false},
      {"text() = 'abc'", "abc", true},
      {"text() != 'abc'", "abd", true},
      // Relational with a numeric string literal coerces at compile time.
      {"text() < '10'", "9", true},
      {"text() < '10'", "abc", false},
      // Relational with a non-numeric literal can never be satisfied
      // (NaN comparisons are false; the old code compared against 0).
      {"text() < 'abc'", "-5", false},
      {"text() > 'abc'", "5", false},
  };
  for (const Case& c : cases) {
    std::optional<Query> storage;
    const QueryNode* node = CompileValueTest(c.predicate, &storage);
    ASSERT_NE(node, nullptr);
    EXPECT_EQ(node->CompareValue(c.value), c.want)
        << "[" << c.predicate << "] on \"" << c.value << "\"";
  }
}

TEST(CompareValueTest, LiteralCoercedOnceAtCompileTime) {
  std::optional<Query> storage;
  const QueryNode* node = CompileValueTest("text() = 10", &storage);
  ASSERT_NE(node, nullptr);
  EXPECT_TRUE(node->literal_is_number);
  EXPECT_TRUE(node->literal_numeric);
  EXPECT_DOUBLE_EQ(node->number, 10.0);

  const QueryNode* str = CompileValueTest("text() < '2.5'", &storage);
  ASSERT_NE(str, nullptr);
  EXPECT_FALSE(str->literal_is_number);
  EXPECT_TRUE(str->literal_numeric);
  EXPECT_DOUBLE_EQ(str->number, 2.5);

  const QueryNode* nonnum = CompileValueTest("text() < 'abc'", &storage);
  ASSERT_NE(nonnum, nullptr);
  EXPECT_FALSE(nonnum->literal_numeric);
}

TEST(ParseXPathNumberTest, CoercionRules) {
  double d = -1;
  EXPECT_TRUE(vitex::ParseXPathNumber("10", &d));
  EXPECT_DOUBLE_EQ(d, 10.0);
  EXPECT_TRUE(vitex::ParseXPathNumber(" \t10\n ", &d));
  EXPECT_DOUBLE_EQ(d, 10.0);
  EXPECT_TRUE(vitex::ParseXPathNumber("-.5", &d));
  EXPECT_DOUBLE_EQ(d, -0.5);
  EXPECT_TRUE(vitex::ParseXPathNumber("1e1", &d));
  EXPECT_DOUBLE_EQ(d, 10.0);
  EXPECT_FALSE(vitex::ParseXPathNumber("", &d));
  EXPECT_FALSE(vitex::ParseXPathNumber("   ", &d));
  EXPECT_FALSE(vitex::ParseXPathNumber("abc", &d));
  EXPECT_FALSE(vitex::ParseXPathNumber("10x", &d));
  EXPECT_FALSE(vitex::ParseXPathNumber("10 20", &d));
  EXPECT_FALSE(vitex::ParseXPathNumber("0x10", &d));  // strtod hex rejected
  EXPECT_FALSE(vitex::ParseXPathNumber("inf", &d));
  EXPECT_FALSE(vitex::ParseXPathNumber("-inf", &d));  // signed spellings too
  EXPECT_FALSE(vitex::ParseXPathNumber("+inf", &d));
  EXPECT_FALSE(vitex::ParseXPathNumber("infinity", &d));
  EXPECT_FALSE(vitex::ParseXPathNumber("nan", &d));
  EXPECT_FALSE(vitex::ParseXPathNumber("-nan", &d));
}

}  // namespace
}  // namespace vitex::xpath
