// Query canonicalization (canonical.h): the cache key of shared-plan
// compilation. Two invariants matter:
//
//   * same skeleton => equal key and hash, with the literals lifted into
//     the parameter vector in slot (preorder) order;
//   * any structural difference — axis, name test, wildcard, operator,
//     formula shape, output node — => distinct key.
//
// The key is also pure data (no pointers), so it must be stable across
// Query moves and across recompilation of the same source.

#include "xpath/canonical.h"

#include <gtest/gtest.h>

#include <string>
#include <utility>
#include <vector>

#include "xpath/query.h"

namespace vitex::xpath {
namespace {

CanonicalQuery CanonOf(const std::string& text) {
  auto compiled = ParseAndCompile(text);
  EXPECT_TRUE(compiled.ok()) << text;
  return Canonicalize(compiled.value());
}

TEST(CanonicalTest, SameSkeletonDifferentLiteralsShareKey) {
  struct Case {
    const char* a;
    const char* b;
  };
  const Case cases[] = {
      {"//quote[@symbol = 'ACME']/price", "//quote[@symbol = 'IBM']/price"},
      {"//a[b = '1']", "//a[b = '2']"},
      {"//a[b > 10]", "//a[b > 99]"},
      {"//a[b = 10]", "//a[b = '10']"},  // spelling is a parameter property
      {"//a[b = '1' and c = '2']", "//a[b = 'x' and c = 'y']"},
      {"//a[not(b = '1')]//c", "//a[not(b = '9')]//c"},
      {"//a[. = 'u']", "//a[. = 'v']"},
      {"//a[@x = '1'][@y = '2']", "//a[@x = '8'][@y = '9']"},
  };
  for (const Case& c : cases) {
    CanonicalQuery ca = CanonOf(c.a);
    CanonicalQuery cb = CanonOf(c.b);
    EXPECT_EQ(ca.key, cb.key) << c.a << " vs " << c.b;
    EXPECT_EQ(ca.hash, cb.hash) << c.a << " vs " << c.b;
    EXPECT_EQ(ca.params.size(), cb.params.size());
    EXPECT_EQ(ca.slot_node_ids, cb.slot_node_ids);
  }
}

TEST(CanonicalTest, StructuralDifferencesChangeKey) {
  // Every neighbor differs from the first query in exactly one structural
  // dimension; all must produce distinct keys.
  const char* base = "//a[b = '1']/c";
  const char* variants[] = {
      "/a[b = '1']/c",        // root axis
      "//a[b = '1']//c",      // output axis
      "//a[b != '1']/c",      // comparison operator
      "//a[b < '1']/c",       // comparison operator (relational)
      "//a[b]/c",             // predicate without value test
      "//a[not(b = '1')]/c",  // formula shape
      "//a[*[1=1]]/c",        // (unsupported; skipped below if so)
      "//a[b = '1']/d",       // output name
      "//x[b = '1']/c",       // main-path name
      "//a[d = '1']/c",       // predicate name
      "//a[@b = '1']/c",      // attribute vs element test
      "//a[b/text() = '1']/c",  // same desugared shape? see below
      "//a[b = '1']",         // output node position
      "//a[b = '1']/c/text()",  // text output
      "//a[b = '1']/@c",      // attribute output
      "//*[b = '1']/c",       // wildcard main test
  };
  CanonicalQuery cb = CanonOf(base);
  for (const char* v : variants) {
    auto compiled = ParseAndCompile(v);
    if (!compiled.ok()) continue;  // outside the fragment: irrelevant
    CanonicalQuery cv = Canonicalize(compiled.value());
    if (std::string(v) == "//a[b/text() = '1']/c") {
      // `[b = '1']` is *documented* to desugar to `[b/text() = '1']`; the
      // two spellings share one skeleton by design.
      EXPECT_EQ(cb.key, cv.key) << v;
      continue;
    }
    EXPECT_NE(cb.key, cv.key) << v;
  }
}

TEST(CanonicalTest, ParamsInPreorderSlotOrder) {
  CanonicalQuery c = CanonOf("//a[@x = 'first'][y > 2]/b[. = 'third']");
  ASSERT_EQ(c.params.size(), 3u);
  EXPECT_EQ(c.params[0].literal, "first");
  EXPECT_EQ(c.params[1].literal, "2");
  EXPECT_TRUE(c.params[1].literal_is_number);
  EXPECT_TRUE(c.params[1].literal_numeric);
  EXPECT_EQ(c.params[2].literal, "third");
  // Slot node ids are preorder positions inside the twig: strictly
  // increasing.
  ASSERT_EQ(c.slot_node_ids.size(), 3u);
  EXPECT_LT(c.slot_node_ids[0], c.slot_node_ids[1]);
  EXPECT_LT(c.slot_node_ids[1], c.slot_node_ids[2]);
}

TEST(CanonicalTest, ValueParamIdentity) {
  // '10' as numeric token vs string literal: same spelling, different
  // comparison semantics, distinct groups.
  CanonicalQuery numeric = CanonOf("//a[b = 10]");
  CanonicalQuery stringly = CanonOf("//a[b = '10']");
  ASSERT_EQ(numeric.params.size(), 1u);
  ASSERT_EQ(stringly.params.size(), 1u);
  EXPECT_NE(numeric.params[0], stringly.params[0]);
  EXPECT_EQ(numeric.params[0], numeric.params[0]);
  // Equal literal + spelling: equal params.
  EXPECT_EQ(CanonOf("//a[b = '10']").params[0], stringly.params[0]);
}

TEST(CanonicalTest, StableAcrossQueryMove) {
  auto compiled = ParseAndCompile("//a[b = '1' or not(c)]//d[@k > 5]");
  ASSERT_TRUE(compiled.ok());
  CanonicalQuery before = Canonicalize(compiled.value());
  // Move the Query object: nodes are heap-allocated, but the key must not
  // depend on addresses anyway.
  Query moved = std::move(compiled).value();
  Query moved_again = std::move(moved);
  CanonicalQuery after = Canonicalize(moved_again);
  EXPECT_EQ(before.key, after.key);
  EXPECT_EQ(before.hash, after.hash);
  EXPECT_EQ(before.slot_node_ids, after.slot_node_ids);
  ASSERT_EQ(before.params.size(), after.params.size());
  for (size_t i = 0; i < before.params.size(); ++i) {
    EXPECT_EQ(before.params[i], after.params[i]);
  }
}

TEST(CanonicalTest, StableAcrossRecompilation) {
  const char* queries[] = {
      "//a", "//a[b = '1']/c", "//site//item[quantity = 3]/@id",
      "//p[not(v = '0') and m]//leaf/text()"};
  for (const char* q : queries) {
    CanonicalQuery first = CanonOf(q);
    CanonicalQuery second = CanonOf(q);
    EXPECT_EQ(first.key, second.key) << q;
    EXPECT_EQ(first.hash, second.hash) << q;
  }
}

TEST(CanonicalTest, WhitespaceSpellingIsIrrelevant) {
  EXPECT_EQ(CanonOf("//a[b   =   '1']/c").key, CanonOf("//a[b='1']/c").key);
}

TEST(CanonicalTest, FnvHashMatchesKeyEquality) {
  // Not a collision test — just that hash is a pure function of the key.
  CanonicalQuery a = CanonOf("//a[b = '1']");
  EXPECT_EQ(a.hash, FnvHash64(a.key));
  EXPECT_NE(FnvHash64("x"), FnvHash64("y"));
  EXPECT_NE(FnvHash64("ab"), FnvHash64("ba"));
}

}  // namespace
}  // namespace vitex::xpath
