#include "xpath/lexer.h"

#include <gtest/gtest.h>

namespace vitex::xpath {
namespace {

std::vector<Token> MustLex(std::string_view q) {
  auto r = Tokenize(q);
  EXPECT_TRUE(r.ok()) << r.status();
  return std::move(r).value();
}

std::vector<TokenKind> Kinds(std::string_view q) {
  std::vector<TokenKind> out;
  for (const Token& t : MustLex(q)) out.push_back(t.kind);
  return out;
}

TEST(LexerTest, EmptyInputYieldsEnd) {
  auto toks = MustLex("");
  ASSERT_EQ(toks.size(), 1u);
  EXPECT_EQ(toks[0].kind, TokenKind::kEnd);
}

TEST(LexerTest, SlashesDistinguished) {
  std::vector<TokenKind> expected = {TokenKind::kSlash, TokenKind::kName,
                                     TokenKind::kDoubleSlash, TokenKind::kName,
                                     TokenKind::kEnd};
  EXPECT_EQ(Kinds("/a//b"), expected);
}

TEST(LexerTest, PaperQuery) {
  auto toks = MustLex("//section[author]//table[position]//cell");
  // 12 real tokens plus the kEnd sentinel.
  ASSERT_EQ(toks.size(), 13u);
  EXPECT_EQ(toks[0].kind, TokenKind::kDoubleSlash);
  EXPECT_EQ(toks[1].text, "section");
  EXPECT_EQ(toks[2].kind, TokenKind::kLBracket);
  EXPECT_EQ(toks[3].text, "author");
  EXPECT_EQ(toks[4].kind, TokenKind::kRBracket);
  EXPECT_EQ(toks[10].kind, TokenKind::kDoubleSlash);
  EXPECT_EQ(toks[11].text, "cell");
  EXPECT_EQ(toks[12].kind, TokenKind::kEnd);
}

TEST(LexerTest, AttributesAndWildcard) {
  std::vector<TokenKind> expected = {
      TokenKind::kDoubleSlash, TokenKind::kStar, TokenKind::kSlash,
      TokenKind::kAt,          TokenKind::kName, TokenKind::kEnd};
  EXPECT_EQ(Kinds("//*/@id"), expected);
}

TEST(LexerTest, ComparisonOperators) {
  std::vector<TokenKind> expected = {
      TokenKind::kEq, TokenKind::kNe, TokenKind::kLt,
      TokenKind::kLe, TokenKind::kGt, TokenKind::kGe, TokenKind::kEnd};
  EXPECT_EQ(Kinds("= != < <= > >="), expected);
}

TEST(LexerTest, StringLiteralsBothQuotes) {
  auto toks = MustLex("'single' \"double\"");
  EXPECT_EQ(toks[0].kind, TokenKind::kString);
  EXPECT_EQ(toks[0].text, "single");
  EXPECT_EQ(toks[1].kind, TokenKind::kString);
  EXPECT_EQ(toks[1].text, "double");
}

TEST(LexerTest, StringLiteralMayContainOtherQuote) {
  auto toks = MustLex("'say \"hi\"'");
  EXPECT_EQ(toks[0].text, "say \"hi\"");
}

TEST(LexerTest, Numbers) {
  auto toks = MustLex("42 3.25 .5 -7");
  EXPECT_EQ(toks[0].kind, TokenKind::kNumber);
  EXPECT_DOUBLE_EQ(toks[0].number, 42.0);
  EXPECT_DOUBLE_EQ(toks[1].number, 3.25);
  EXPECT_DOUBLE_EQ(toks[2].number, 0.5);
  EXPECT_DOUBLE_EQ(toks[3].number, -7.0);
}

TEST(LexerTest, DotIsSelfUnlessNumber) {
  auto toks = MustLex(". .5");
  EXPECT_EQ(toks[0].kind, TokenKind::kDot);
  EXPECT_EQ(toks[1].kind, TokenKind::kNumber);
}

TEST(LexerTest, NamesWithXmlChars) {
  auto toks = MustLex("ProteinEntry ns:tag a-b.c _x");
  EXPECT_EQ(toks[0].text, "ProteinEntry");
  EXPECT_EQ(toks[1].text, "ns:tag");
  EXPECT_EQ(toks[2].text, "a-b.c");
  EXPECT_EQ(toks[3].text, "_x");
}

TEST(LexerTest, KeywordsAreNames) {
  auto toks = MustLex("and or not text");
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(toks[i].kind, TokenKind::kName);
  }
  EXPECT_TRUE(toks[0].IsKeyword("and"));
  EXPECT_TRUE(toks[1].IsKeyword("or"));
}

TEST(LexerTest, Parens) {
  std::vector<TokenKind> expected = {TokenKind::kName, TokenKind::kLParen,
                                     TokenKind::kRParen, TokenKind::kEnd};
  EXPECT_EQ(Kinds("text()"), expected);
}

TEST(LexerTest, OffsetsRecorded) {
  auto toks = MustLex("//a[b]");
  EXPECT_EQ(toks[0].offset, 0u);  // //
  EXPECT_EQ(toks[1].offset, 2u);  // a
  EXPECT_EQ(toks[2].offset, 3u);  // [
  EXPECT_EQ(toks[3].offset, 4u);  // b
}

TEST(LexerTest, WhitespaceIgnored) {
  EXPECT_EQ(Kinds(" //  a [ b ] "), Kinds("//a[b]"));
}

TEST(LexerErrorTest, UnterminatedString) {
  EXPECT_TRUE(Tokenize("'oops").status().IsParseError());
}

TEST(LexerErrorTest, LoneBang) {
  EXPECT_TRUE(Tokenize("a ! b").status().IsParseError());
}

TEST(LexerErrorTest, UnexpectedCharacter) {
  EXPECT_TRUE(Tokenize("//a#b").status().IsParseError());
  EXPECT_TRUE(Tokenize("$x").status().IsParseError());
}

}  // namespace
}  // namespace vitex::xpath
