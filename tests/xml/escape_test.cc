#include "xml/escape.h"

#include <gtest/gtest.h>

namespace vitex::xml {
namespace {

TEST(EscapeTextTest, EscapesAllSpecials) {
  EXPECT_EQ(EscapeText("a<b>c&d\"e'f"),
            "a&lt;b&gt;c&amp;d&quot;e&apos;f");
}

TEST(EscapeTextTest, PlainTextUnchanged) {
  EXPECT_EQ(EscapeText("hello world 123"), "hello world 123");
  EXPECT_EQ(EscapeText(""), "");
}

TEST(EscapeAttributeTest, EscapesQuotes) {
  EXPECT_EQ(EscapeAttribute("say \"hi\""), "say &quot;hi&quot;");
}

TEST(DecodeEntitiesTest, PredefinedEntities) {
  auto r = DecodeEntities("&lt;&gt;&amp;&apos;&quot;");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), "<>&'\"");
}

TEST(DecodeEntitiesTest, PassesThroughPlainText) {
  auto r = DecodeEntities("no entities here");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), "no entities here");
}

TEST(DecodeEntitiesTest, DecimalCharRef) {
  auto r = DecodeEntities("&#65;&#66;&#67;");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), "ABC");
}

TEST(DecodeEntitiesTest, HexCharRef) {
  auto r = DecodeEntities("&#x41;&#x62;&#X63;");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), "Abc");
}

TEST(DecodeEntitiesTest, MultibyteCharRefBecomesUtf8) {
  auto r = DecodeEntities("&#233;");  // é
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), "\xc3\xa9");
  r = DecodeEntities("&#x20AC;");  // €
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), "\xe2\x82\xac");
  r = DecodeEntities("&#x1F600;");  // 😀 (4-byte)
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), "\xf0\x9f\x98\x80");
}

TEST(DecodeEntitiesTest, MixedTextAndEntities) {
  auto r = DecodeEntities("AT&amp;T is &lt;big&gt;");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), "AT&T is <big>");
}

TEST(DecodeEntitiesTest, UnterminatedEntityFails) {
  EXPECT_FALSE(DecodeEntities("a&amp").ok());
  EXPECT_FALSE(DecodeEntities("a&").ok());
}

TEST(DecodeEntitiesTest, UnknownEntityFails) {
  EXPECT_FALSE(DecodeEntities("&nbsp;").ok());
  EXPECT_FALSE(DecodeEntities("&bogus;").ok());
}

TEST(DecodeEntitiesTest, EmptyAndMalformedNumericRefsFail) {
  EXPECT_FALSE(DecodeEntities("&#;").ok());
  EXPECT_FALSE(DecodeEntities("&#x;").ok());
  EXPECT_FALSE(DecodeEntities("&#xZZ;").ok());
  EXPECT_FALSE(DecodeEntities("&#12a;").ok());
}

TEST(DecodeEntitiesTest, OutOfRangeCodepointFails) {
  EXPECT_FALSE(DecodeEntities("&#x110000;").ok());
  EXPECT_FALSE(DecodeEntities("&#xD800;").ok());  // surrogate
}

TEST(AppendUtf8Test, AsciiBoundaries) {
  std::string out;
  EXPECT_TRUE(AppendUtf8(0x7f, &out));
  EXPECT_EQ(out, "\x7f");
}

TEST(AppendUtf8Test, TwoByteBoundary) {
  std::string out;
  EXPECT_TRUE(AppendUtf8(0x80, &out));
  EXPECT_EQ(out, "\xc2\x80");
  out.clear();
  EXPECT_TRUE(AppendUtf8(0x7ff, &out));
  EXPECT_EQ(out, "\xdf\xbf");
}

TEST(AppendUtf8Test, RejectsSurrogatesAndOverflow) {
  std::string out;
  EXPECT_FALSE(AppendUtf8(0xd800, &out));
  EXPECT_FALSE(AppendUtf8(0xdfff, &out));
  EXPECT_FALSE(AppendUtf8(0x110000, &out));
  EXPECT_TRUE(out.empty());
}

TEST(RoundTripTest, EscapeThenDecodeIsIdentity) {
  const std::string cases[] = {
      "plain", "<tag>", "a&b", "\"quoted\"", "'single'", "x<y>&z\"w'v",
      "", "tab\tnewline\n",
  };
  for (const std::string& original : cases) {
    auto decoded = DecodeEntities(EscapeText(original));
    ASSERT_TRUE(decoded.ok()) << original;
    EXPECT_EQ(decoded.value(), original);
  }
}

}  // namespace
}  // namespace vitex::xml
