// Robustness: the parser must never crash, hang or mis-report on corrupted
// input — it either parses or returns a clean ParseError. Mutation-based
// fuzzing with deterministic seeds.

#include <gtest/gtest.h>

#include <string>

#include "common/random.h"
#include "workload/random_generator.h"
#include "xml/sax_parser.h"

namespace vitex::xml {
namespace {

class NullHandler : public ContentHandler {};

// Parses arbitrary bytes; the only acceptable outcomes are OK or a
// ParseError/ResourceExhausted status.
void MustNotMisbehave(const std::string& doc) {
  NullHandler handler;
  Status s = ParseString(doc, &handler);
  if (!s.ok()) {
    EXPECT_TRUE(s.IsParseError() || s.IsResourceExhausted())
        << s << "\ninput: " << doc;
  }
}

TEST(SaxRobustnessTest, ByteFlipsNeverCrash) {
  Random rng(4242);
  workload::RandomDocOptions options;
  options.max_elements = 30;
  for (int trial = 0; trial < 100; ++trial) {
    std::string doc = workload::GenerateRandomDocument(options, &rng);
    // Flip 1-3 random bytes.
    int flips = 1 + static_cast<int>(rng.Uniform(3));
    for (int f = 0; f < flips; ++f) {
      size_t pos = rng.Uniform(doc.size());
      doc[pos] = static_cast<char>(rng.Uniform(256));
    }
    MustNotMisbehave(doc);
  }
}

TEST(SaxRobustnessTest, TruncationsNeverCrash) {
  Random rng(99);
  workload::RandomDocOptions options;
  options.max_elements = 20;
  std::string doc = workload::GenerateRandomDocument(options, &rng);
  for (size_t cut = 0; cut <= doc.size(); ++cut) {
    MustNotMisbehave(doc.substr(0, cut));
  }
}

TEST(SaxRobustnessTest, InsertionsNeverCrash) {
  Random rng(1234);
  workload::RandomDocOptions options;
  options.max_elements = 20;
  const char kNasty[] = "<>&;\"'/![]-?";
  for (int trial = 0; trial < 100; ++trial) {
    std::string doc = workload::GenerateRandomDocument(options, &rng);
    size_t pos = rng.Uniform(doc.size());
    doc.insert(pos, 1, kNasty[rng.Uniform(sizeof(kNasty) - 1)]);
    MustNotMisbehave(doc);
  }
}

TEST(SaxRobustnessTest, RandomGarbageNeverCrashes) {
  Random rng(777);
  for (int trial = 0; trial < 200; ++trial) {
    size_t len = rng.Uniform(200);
    std::string garbage;
    for (size_t i = 0; i < len; ++i) {
      garbage.push_back(static_cast<char>(rng.Uniform(256)));
    }
    MustNotMisbehave(garbage);
  }
}

TEST(SaxRobustnessTest, MarkupSoupNeverCrashes) {
  Random rng(555);
  const char* kPieces[] = {"<a>",  "</a>",  "<a",    ">",     "<!--", "-->",
                           "<![CDATA[", "]]>", "<?pi", "?>",  "&amp;", "&#",
                           ";",    "x=\"",  "\"",    "<!DOCTYPE", "[", "]"};
  for (int trial = 0; trial < 300; ++trial) {
    std::string soup;
    int pieces = 1 + static_cast<int>(rng.Uniform(20));
    for (int p = 0; p < pieces; ++p) {
      soup += kPieces[rng.Uniform(sizeof(kPieces) / sizeof(kPieces[0]))];
    }
    MustNotMisbehave(soup);
  }
}

TEST(SaxRobustnessTest, PoisonedParserStaysPoisoned) {
  NullHandler handler;
  SaxParser parser(&handler);
  ASSERT_FALSE(parser.Feed("<a><b></a>").ok());
  EXPECT_TRUE(parser.Feed("<c/>").IsInternal());
  EXPECT_TRUE(parser.Finish().IsInternal());
  parser.Reset();
  EXPECT_TRUE(parser.Feed("<c/>").ok());
  EXPECT_TRUE(parser.Finish().ok());
}

TEST(SaxRobustnessTest, HugeAttributeAndName) {
  std::string long_name(5000, 'n');
  std::string long_value(100000, 'v');
  std::string doc =
      "<" + long_name + " attr=\"" + long_value + "\"></" + long_name + ">";
  NullHandler handler;
  EXPECT_TRUE(ParseString(doc, &handler).ok());
}

TEST(SaxRobustnessTest, DeepNestingHitsLimitNotStack) {
  std::string doc;
  const int kDepth = 200000;  // beyond the default max_depth of 100000
  for (int i = 0; i < kDepth; ++i) doc += "<a>";
  for (int i = 0; i < kDepth; ++i) doc += "</a>";
  NullHandler handler;
  Status s = ParseString(doc, &handler);
  EXPECT_TRUE(s.IsResourceExhausted()) << s;
}

}  // namespace
}  // namespace vitex::xml
