// Tests for the SIMD scan kernels (xml/simd_scan.h).
//
// The contract under test: every implementation tier returns bit-identical
// results for every (buffer, from) input, and no kernel ever reads outside
// [data, data+size). Parity is checked against independent reference loops
// (re-implemented here, not shared with the library) at every alignment
// and length 0..130; overreads are caught two ways — heap buffers sized
// exactly (ASan redzones) and an mmap'd page whose successor is PROT_NONE
// (hard SIGSEGV even without ASan). A final sweep pins parser-level
// equivalence: the difftest workload corpus parses to identical canonical
// event streams under every available scan mode.

#include "xml/simd_scan.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "common/random.h"
#include "difftest/workload_corpus.h"
#include "feed_split_helpers.h"

#if defined(__unix__) || defined(__APPLE__)
#include <sys/mman.h>
#include <unistd.h>
#define VITEX_TEST_HAVE_MMAN 1
#else
#define VITEX_TEST_HAVE_MMAN 0
#endif

namespace vitex::xml::scan {
namespace {

// ---------------------------------------------------------------------------
// Independent reference semantics (deliberately NOT the library's scalar
// tier: these loops pin the contract even if the library's reference
// drifts).
// ---------------------------------------------------------------------------

bool RefIsXmlWs(char c) {
  return c == ' ' || c == '\t' || c == '\n' || c == '\r';
}

bool RefIsAsciiSpace(char c) {
  return c == ' ' || c == '\t' || c == '\n' || c == '\r' || c == '\f' ||
         c == '\v';
}

bool RefIsNameEnd(char c) {
  return RefIsXmlWs(c) || c == '=' || c == '/' || c == '>';
}

size_t RefFindMarkup(std::string_view s, size_t from) {
  for (size_t i = from; i < s.size(); ++i) {
    if (s[i] == '<' || s[i] == '&') return i;
  }
  return kNotFound;
}

size_t RefFindQuoteOrAmp(std::string_view s, size_t from, char quote) {
  for (size_t i = from; i < s.size(); ++i) {
    if (s[i] == quote || s[i] == '&') return i;
  }
  return kNotFound;
}

size_t RefScanNameEnd(std::string_view s, size_t from) {
  size_t i = from;
  while (i < s.size() && !RefIsNameEnd(s[i])) ++i;
  return i;
}

size_t RefScanWhitespaceRun(std::string_view s, size_t from) {
  size_t i = from;
  while (i < s.size() && RefIsXmlWs(s[i])) ++i;
  return i;
}

size_t RefScanAsciiSpaceRun(std::string_view s, size_t from) {
  size_t i = from;
  while (i < s.size() && RefIsAsciiSpace(s[i])) ++i;
  return i;
}

size_t RefFindByte(std::string_view s, size_t from, char c) {
  for (size_t i = from; i < s.size(); ++i) {
    if (s[i] == c) return i;
  }
  return kNotFound;
}

size_t RefFindGtOrQuote(std::string_view s, size_t from) {
  for (size_t i = from; i < s.size(); ++i) {
    if (s[i] == '>' || s[i] == '"' || s[i] == '\'') return i;
  }
  return kNotFound;
}

// ---------------------------------------------------------------------------
// Mode plumbing
// ---------------------------------------------------------------------------

std::vector<ScanMode> AvailableModes() {
  std::vector<ScanMode> modes;
  for (ScanMode m : {ScanMode::kScalar, ScanMode::kSse2, ScanMode::kAvx2}) {
    if (ForceScanMode(m)) modes.push_back(m);
  }
  ResetScanModeFromEnvironment();
  return modes;
}

class SimdScanTest : public ::testing::Test {
 protected:
  void TearDown() override {
#if VITEX_TEST_HAVE_MMAN
    unsetenv("VITEX_FORCE_SCALAR_SCAN");
#endif
    ResetScanModeFromEnvironment();
  }
};

// Asserts every available tier agrees with the reference loops on `s` for
// every `from` in [0, s.size()] and both quote characters.
void CheckAllKernelsAllModes(std::string_view s) {
  for (ScanMode mode : AvailableModes()) {
    ASSERT_TRUE(ForceScanMode(mode));
    for (size_t from = 0; from <= s.size(); ++from) {
      ASSERT_EQ(FindMarkup(s, from), RefFindMarkup(s, from))
          << ScanModeName(mode) << " len=" << s.size() << " from=" << from;
      ASSERT_EQ(FindQuoteOrAmp(s, from, '"'), RefFindQuoteOrAmp(s, from, '"'))
          << ScanModeName(mode) << " len=" << s.size() << " from=" << from;
      ASSERT_EQ(FindQuoteOrAmp(s, from, '\''),
                RefFindQuoteOrAmp(s, from, '\''))
          << ScanModeName(mode) << " len=" << s.size() << " from=" << from;
      ASSERT_EQ(ScanNameEnd(s, from), RefScanNameEnd(s, from))
          << ScanModeName(mode) << " len=" << s.size() << " from=" << from;
      ASSERT_EQ(ScanWhitespaceRun(s, from), RefScanWhitespaceRun(s, from))
          << ScanModeName(mode) << " len=" << s.size() << " from=" << from;
      ASSERT_EQ(ScanAsciiSpaceRun(s, from), RefScanAsciiSpaceRun(s, from))
          << ScanModeName(mode) << " len=" << s.size() << " from=" << from;
      ASSERT_EQ(FindByte(s, from, '<'), RefFindByte(s, from, '<'))
          << ScanModeName(mode) << " len=" << s.size() << " from=" << from;
      ASSERT_EQ(FindGtOrQuote(s, from), RefFindGtOrQuote(s, from))
          << ScanModeName(mode) << " len=" << s.size() << " from=" << from;
    }
  }
  ResetScanModeFromEnvironment();
}

// ---------------------------------------------------------------------------
// Dispatch / mode selection
// ---------------------------------------------------------------------------

TEST_F(SimdScanTest, ScalarTierAlwaysAvailable) {
  EXPECT_TRUE(ForceScanMode(ScanMode::kScalar));
  EXPECT_EQ(ActiveScanMode(), ScanMode::kScalar);
}

TEST_F(SimdScanTest, ModeNamesAreStable) {
  EXPECT_EQ(ScanModeName(ScanMode::kScalar), "scalar");
  EXPECT_EQ(ScanModeName(ScanMode::kSse2), "sse2");
  EXPECT_EQ(ScanModeName(ScanMode::kAvx2), "avx2");
}

TEST_F(SimdScanTest, ActiveModeIsAnAvailableTier) {
  ScanMode active = ActiveScanMode();
  bool found = false;
  for (ScanMode m : AvailableModes()) found = found || m == active;
  EXPECT_TRUE(found) << "active mode " << ScanModeName(active)
                     << " not force-able";
}

#if VITEX_TEST_HAVE_MMAN
TEST_F(SimdScanTest, EnvVarForcesScalar) {
  setenv("VITEX_FORCE_SCALAR_SCAN", "1", /*overwrite=*/1);
  ResetScanModeFromEnvironment();
  EXPECT_EQ(ActiveScanMode(), ScanMode::kScalar);
  // "0" and "" mean "not forced".
  setenv("VITEX_FORCE_SCALAR_SCAN", "0", /*overwrite=*/1);
  ResetScanModeFromEnvironment();
  ScanMode resolved = ActiveScanMode();
  unsetenv("VITEX_FORCE_SCALAR_SCAN");
  ResetScanModeFromEnvironment();
  EXPECT_EQ(resolved, ActiveScanMode());
}
#endif

// ---------------------------------------------------------------------------
// Parity at every alignment and length
// ---------------------------------------------------------------------------

// Buffers densely seeded with kernel target bytes, swept over lengths
// 0..130 (covers empty, sub-window, one-window, and straddle cases for
// both 16- and 32-byte windows) at every 0..63 base alignment.
TEST_F(SimdScanTest, ParityAllAlignmentsAndLengths) {
  const std::string targets = "<&>\"'=/ \t\n\r\f\vabc";
  Random rng(0xC0FFEE);
  // One big backing buffer; views taken at varying offsets change the
  // pointer alignment seen by the vector loads.
  std::string backing(64 + 130 + 64, 'x');
  for (size_t align = 0; align < 64; align += 7) {
    for (size_t len = 0; len <= 130; ++len) {
      char* base = backing.data() + align;
      for (size_t i = 0; i < len; ++i) {
        base[i] = targets[rng.Next() % targets.size()];
      }
      CheckAllKernelsAllModes(std::string_view(base, len));
    }
  }
}

// Every target byte at every single position of an otherwise-neutral
// buffer: catches lane mix-ups and off-by-one window math.
TEST_F(SimdScanTest, ParitySingleTargetAtEveryPosition) {
  const std::string targets = "<&>\"'=/ \t\n\r\f\v";
  for (size_t len : {1u, 15u, 16u, 17u, 31u, 32u, 33u, 64u, 65u, 100u}) {
    std::string buf(len, 'a');
    for (char target : targets) {
      for (size_t pos = 0; pos < len; ++pos) {
        buf.assign(len, 'a');
        buf[pos] = target;
        CheckAllKernelsAllModes(buf);
      }
    }
  }
}

// All-whitespace and no-target buffers: the "no hit anywhere" paths.
TEST_F(SimdScanTest, ParityUniformBuffers) {
  for (char fill : {' ', '\t', '\r', '\f', 'a', '\0', '\x80', '\xff'}) {
    for (size_t len : {0u, 1u, 16u, 32u, 33u, 127u}) {
      CheckAllKernelsAllModes(std::string(len, fill));
    }
  }
}

// High-bit bytes must never be misclassified: the ASCII-space range trick
// subtracts 9, which wraps for bytes >= 0x89 — parity pins that the
// unsigned comparison handles the wrap.
TEST_F(SimdScanTest, ParityHighBitBytes) {
  std::string buf;
  for (int b = 0; b < 256; ++b) buf.push_back(static_cast<char>(b));
  buf += buf;  // 512 bytes, every value twice, crossing window boundaries
  CheckAllKernelsAllModes(buf);
}

// ---------------------------------------------------------------------------
// Overread guards
// ---------------------------------------------------------------------------

// Heap buffers sized exactly to the view: under ASan any vector load that
// touches bytes past size() trips the redzone. (Without ASan this still
// exercises the exact-tail paths.)
TEST_F(SimdScanTest, GuardedHeapBuffersExactSize) {
  Random rng(0xBEEF);
  const std::string targets = "<&>\"' \t\nabz";
  for (size_t len = 0; len <= 67; ++len) {
    // A fresh allocation per length so the redzone sits right after the
    // last byte.
    std::vector<char> exact(len);
    for (size_t i = 0; i < len; ++i) {
      exact[i] = targets[rng.Next() % targets.size()];
    }
    CheckAllKernelsAllModes(
        std::string_view(exact.data(), exact.size()));
  }
}

#if VITEX_TEST_HAVE_MMAN
// Buffer ending flush against a PROT_NONE page: an overread of even one
// byte is a hard SIGSEGV on every build, sanitized or not.
TEST_F(SimdScanTest, PageBoundaryStraddle) {
  const size_t page = static_cast<size_t>(sysconf(_SC_PAGESIZE));
  void* mem = mmap(nullptr, 2 * page, PROT_READ | PROT_WRITE,
                   MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
  ASSERT_NE(mem, MAP_FAILED);
  ASSERT_EQ(mprotect(static_cast<char*>(mem) + page, page, PROT_NONE), 0);
  char* page_end = static_cast<char*>(mem) + page;
  const std::string targets = "<&>\"'=/ \t\n\r\f\vab";
  Random rng(0xFACADE);
  for (size_t len = 0; len <= 130; ++len) {
    char* base = page_end - len;  // view ends exactly at the guard page
    for (size_t i = 0; i < len; ++i) {
      base[i] = targets[rng.Next() % targets.size()];
    }
    CheckAllKernelsAllModes(std::string_view(base, len));
  }
  ASSERT_EQ(munmap(mem, 2 * page), 0);
}
#endif

// ---------------------------------------------------------------------------
// Workload-corpus parity: kernel level and parser level
// ---------------------------------------------------------------------------

// Kernel-level: real workload documents as byte corpora, sampled at many
// scan starting points.
TEST_F(SimdScanTest, KernelParityOverWorkloadCorpus) {
  for (difftest::WorkloadKind kind : difftest::AllWorkloads()) {
    Random rng(42);
    std::string doc = difftest::GenerateWorkloadDocument(kind, 7, &rng);
    std::string_view s = doc;
    for (ScanMode mode : AvailableModes()) {
      ASSERT_TRUE(ForceScanMode(mode));
      for (size_t from = 0; from < s.size();
           from += 1 + (from % 13)) {  // irregular stride hits all phases
        ASSERT_EQ(FindMarkup(s, from), RefFindMarkup(s, from))
            << difftest::WorkloadName(kind) << " " << ScanModeName(mode);
        ASSERT_EQ(ScanNameEnd(s, from), RefScanNameEnd(s, from))
            << difftest::WorkloadName(kind) << " " << ScanModeName(mode);
        ASSERT_EQ(ScanWhitespaceRun(s, from), RefScanWhitespaceRun(s, from))
            << difftest::WorkloadName(kind) << " " << ScanModeName(mode);
        ASSERT_EQ(ScanAsciiSpaceRun(s, from), RefScanAsciiSpaceRun(s, from))
            << difftest::WorkloadName(kind) << " " << ScanModeName(mode);
        ASSERT_EQ(FindQuoteOrAmp(s, from, '"'),
                  RefFindQuoteOrAmp(s, from, '"'))
            << difftest::WorkloadName(kind) << " " << ScanModeName(mode);
        ASSERT_EQ(FindGtOrQuote(s, from), RefFindGtOrQuote(s, from))
            << difftest::WorkloadName(kind) << " " << ScanModeName(mode);
      }
    }
    ResetScanModeFromEnvironment();
  }
}

// Parser-level: the canonical event stream (stamps included) must be
// identical under every scan mode, for whole-document, mid-split and
// byte-at-a-time feeds. This is the FeedSplitEverywhere invariant crossed
// with the scan-mode axis — the acceptance gate for the kernel swap.
TEST_F(SimdScanTest, ParserParityOverWorkloadCorpus) {
  for (difftest::WorkloadKind kind : difftest::AllWorkloads()) {
    Random rng(11);
    std::string doc = difftest::GenerateWorkloadDocument(kind, 3, &rng);
    CanonicalParse reference;
    bool have_reference = false;
    for (ScanMode mode : AvailableModes()) {
      ASSERT_TRUE(ForceScanMode(mode));
      CanonicalParse whole = ParseWithBoundaries(doc, {});
      CanonicalParse split = ParseWithBoundaries(doc, {doc.size() / 3});
      CanonicalParse bytewise = ParseWithChunkSize(doc, 1);
      ASSERT_EQ(whole, split)
          << difftest::WorkloadName(kind) << " " << ScanModeName(mode);
      ASSERT_EQ(whole, bytewise)
          << difftest::WorkloadName(kind) << " " << ScanModeName(mode);
      if (!have_reference) {
        reference = whole;
        have_reference = true;
      } else {
        ASSERT_EQ(whole, reference)
            << difftest::WorkloadName(kind) << " mode "
            << ScanModeName(mode) << " diverged from first mode";
      }
    }
    ResetScanModeFromEnvironment();
  }
}

// Documents engineered at the seams the kernels care about: targets
// around the 16/32-byte marks inside attribute values, names, comments,
// CDATA and entity-bearing text.
TEST_F(SimdScanTest, ParserParityOnSeamCrafters) {
  const std::string pad15(15, 'p');
  const std::string pad31(31, 'q');
  const std::string ws33(33, ' ');
  const std::vector<std::string> docs = {
      "<a x=\"" + pad31 + "&amp;" + pad15 + "\">t</a>",
      "<a>" + pad31 + "&lt;" + pad31 + "</a>",
      "<" + std::string(31, 'n') + "/>",
      "<a>" + ws33 + "<b/>" + ws33 + "</a>",
      "<a><!--" + pad31 + "-->" + pad15 + "</a>",
      "<a><![CDATA[" + ws33 + "]]></a>",
      "<a " + std::string(17, ' ') + "k='" + pad31 + "'/>",
      "<a>&#60;" + pad31 + "&#38;</a>",
  };
  for (const std::string& doc : docs) {
    CanonicalParse reference;
    bool have_reference = false;
    for (ScanMode mode : AvailableModes()) {
      ASSERT_TRUE(ForceScanMode(mode));
      FeedSplitEverywhere(doc, {}, std::string(ScanModeName(mode)));
      CanonicalParse whole = ParseWithBoundaries(doc, {});
      if (!have_reference) {
        reference = whole;
        have_reference = true;
      } else {
        ASSERT_EQ(whole, reference) << doc << " under " << ScanModeName(mode);
      }
    }
    ResetScanModeFromEnvironment();
  }
}

}  // namespace
}  // namespace vitex::xml::scan
