// FeedSplitEverywhere: the chunk-invariance harness for the SAX parser.
//
// A streaming parser must produce the same event sequence — and the same
// error — no matter where the input is split. This helper parses a document
// whole, then at EVERY two-chunk split point, then byte at a time, and
// asserts the canonical event streams are identical. The canonical form
// includes the parser's document-order sequence stamps, so stamping
// variance under chunking is caught too (the differential oracle depends
// on those stamps being chunking-invariant).

#ifndef VITEX_TESTS_XML_FEED_SPLIT_HELPERS_H_
#define VITEX_TESTS_XML_FEED_SPLIT_HELPERS_H_

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "xml/sax_parser.h"

namespace vitex::xml {

/// Event stream + final status of one parse, in canonical text form.
struct CanonicalParse {
  Status status = Status::OK();
  std::vector<std::string> events;

  bool operator==(const CanonicalParse& other) const {
    return status.code() == other.status.code() &&
           status.message() == other.status.message() &&
           events == other.events;
  }
};

/// Records every event with its stamps. Pieces of one text node (same
/// sequence number) are merged, since chunking may legally split a node
/// into multiple Text() deliveries.
class CanonicalEventHandler : public ContentHandler {
 public:
  Status StartElement(const StartElementEvent& event) override {
    events.push_back("S:" + std::string(event.name) + ":" +
                     std::to_string(event.depth) + ":" +
                     std::to_string(event.sequence));
    for (const Attribute& a : event.attributes) {
      events.push_back("A:" + std::string(a.name) + "=" +
                       std::string(a.value));
    }
    return Status::OK();
  }
  Status EndElement(std::string_view name, int depth) override {
    events.push_back("E:" + std::string(name) + ":" + std::to_string(depth));
    return Status::OK();
  }
  Status Text(const TextEvent& event) override {
    std::string tag = "T:" + std::to_string(event.depth) + ":" +
                      std::to_string(event.sequence) + ":";
    if (!events.empty() && events.back().rfind(tag, 0) == 0) {
      events.back() += std::string(event.text);
    } else {
      events.push_back(tag + std::string(event.text));
    }
    return Status::OK();
  }
  Status Comment(std::string_view text) override {
    events.push_back("C:" + std::string(text));
    return Status::OK();
  }
  Status ProcessingInstruction(std::string_view target,
                               std::string_view data) override {
    events.push_back("P:" + std::string(target) + ":" + std::string(data));
    return Status::OK();
  }

  std::vector<std::string> events;
};

/// Parses `doc` split at the given ascending boundary offsets.
inline CanonicalParse ParseWithBoundaries(const std::string& doc,
                                          const std::vector<size_t>& boundaries,
                                          SaxParserOptions options = {}) {
  CanonicalEventHandler handler;
  SaxParser parser(&handler, options);
  CanonicalParse out;
  size_t pos = 0;
  for (size_t b : boundaries) {
    if (b <= pos || b >= doc.size()) continue;
    out.status = parser.Feed(std::string_view(doc).substr(pos, b - pos));
    if (!out.status.ok()) {
      out.events = std::move(handler.events);
      return out;
    }
    pos = b;
  }
  out.status = parser.Feed(std::string_view(doc).substr(pos));
  if (out.status.ok()) out.status = parser.Finish();
  out.events = std::move(handler.events);
  return out;
}

/// Parses `doc` in fixed-size chunks.
inline CanonicalParse ParseWithChunkSize(const std::string& doc,
                                         size_t chunk_size,
                                         SaxParserOptions options = {}) {
  std::vector<size_t> boundaries;
  for (size_t b = chunk_size; b < doc.size(); b += chunk_size) {
    boundaries.push_back(b);
  }
  return ParseWithBoundaries(doc, boundaries, options);
}

/// The harness: whole-document parse vs every two-chunk split vs byte at a
/// time. Works for error documents too (the error must be split-invariant).
/// `context` names the document in failure output.
inline void FeedSplitEverywhere(const std::string& doc,
                                SaxParserOptions options = {},
                                const std::string& context = "") {
  CanonicalParse whole = ParseWithBoundaries(doc, {}, options);
  for (size_t split = 1; split < doc.size(); ++split) {
    CanonicalParse two = ParseWithBoundaries(doc, {split}, options);
    ASSERT_EQ(whole, two)
        << context << "\nsplit at byte " << split << " of: " << doc
        << "\nwhole status: " << whole.status
        << "\nsplit status: " << two.status;
  }
  CanonicalParse bytewise = ParseWithChunkSize(doc, 1, options);
  ASSERT_EQ(whole, bytewise)
      << context << "\nbyte-at-a-time on: " << doc
      << "\nwhole status: " << whole.status
      << "\nbytewise status: " << bytewise.status;
}

}  // namespace vitex::xml

#endif  // VITEX_TESTS_XML_FEED_SPLIT_HELPERS_H_
