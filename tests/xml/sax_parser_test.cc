#include "xml/sax_parser.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace vitex::xml {
namespace {

// Records every event as a printable line for easy assertions.
class TraceHandler : public ContentHandler {
 public:
  Status StartDocument() override {
    trace.push_back("startdoc");
    return Status::OK();
  }
  Status StartElement(const StartElementEvent& event) override {
    std::string line = "start " + std::string(event.name) + " d" +
                       std::to_string(event.depth);
    for (const Attribute& a : event.attributes) {
      line += " " + std::string(a.name) + "=" + std::string(a.value);
    }
    trace.push_back(line);
    return Status::OK();
  }
  Status EndElement(std::string_view name, int depth) override {
    trace.push_back("end " + std::string(name) + " d" + std::to_string(depth));
    return Status::OK();
  }
  Status Characters(std::string_view text, int depth) override {
    trace.push_back("text[" + std::string(text) + "] d" +
                    std::to_string(depth));
    return Status::OK();
  }
  Status ProcessingInstruction(std::string_view target,
                               std::string_view data) override {
    trace.push_back("pi " + std::string(target) + " [" + std::string(data) +
                    "]");
    return Status::OK();
  }
  Status Comment(std::string_view text) override {
    trace.push_back("comment[" + std::string(text) + "]");
    return Status::OK();
  }
  Status EndDocument() override {
    trace.push_back("enddoc");
    return Status::OK();
  }

  std::vector<std::string> trace;
};

std::vector<std::string> Parse(std::string_view doc,
                               SaxParserOptions options = SaxParserOptions()) {
  TraceHandler handler;
  Status s = ParseString(doc, &handler, options);
  EXPECT_TRUE(s.ok()) << s;
  return handler.trace;
}

Status ParseStatus(std::string_view doc,
                   SaxParserOptions options = SaxParserOptions()) {
  TraceHandler handler;
  return ParseString(doc, &handler, options);
}

TEST(SaxParserTest, MinimalDocument) {
  auto t = Parse("<a/>");
  std::vector<std::string> expected = {"startdoc", "start a d1", "end a d1",
                                       "enddoc"};
  EXPECT_EQ(t, expected);
}

TEST(SaxParserTest, NestedElementsTrackDepth) {
  auto t = Parse("<a><b><c/></b></a>");
  std::vector<std::string> expected = {
      "startdoc",   "start a d1", "start b d2", "start c d3",
      "end c d3",   "end b d2",   "end a d1",   "enddoc"};
  EXPECT_EQ(t, expected);
}

TEST(SaxParserTest, TextContent) {
  auto t = Parse("<a>hello</a>");
  std::vector<std::string> expected = {"startdoc", "start a d1",
                                       "text[hello] d1", "end a d1", "enddoc"};
  EXPECT_EQ(t, expected);
}

TEST(SaxParserTest, WhitespaceTextSkippedByDefault) {
  auto t = Parse("<a>  <b/>  </a>");
  std::vector<std::string> expected = {"startdoc", "start a d1", "start b d2",
                                       "end b d2", "end a d1", "enddoc"};
  EXPECT_EQ(t, expected);
}

TEST(SaxParserTest, WhitespaceTextKeptWhenRequested) {
  SaxParserOptions options;
  options.skip_whitespace_text = false;
  auto t = Parse("<a> <b/></a>", options);
  std::vector<std::string> expected = {"startdoc",   "start a d1",
                                       "text[ ] d1", "start b d2",
                                       "end b d2",   "end a d1",
                                       "enddoc"};
  EXPECT_EQ(t, expected);
}

TEST(SaxParserTest, Attributes) {
  auto t = Parse(R"(<a x="1" y='two'/>)");
  EXPECT_EQ(t[1], "start a d1 x=1 y=two");
}

TEST(SaxParserTest, AttributeValueEntityDecoding) {
  auto t = Parse(R"(<a msg="a&amp;b &lt;c&gt;"/>)");
  EXPECT_EQ(t[1], "start a d1 msg=a&b <c>");
}

TEST(SaxParserTest, AttributeWithWhitespaceAroundEquals) {
  auto t = Parse(R"(<a x = "1"/>)");
  EXPECT_EQ(t[1], "start a d1 x=1");
}

TEST(SaxParserTest, TextEntityDecoding) {
  auto t = Parse("<a>AT&amp;T &#65;</a>");
  EXPECT_EQ(t[2], "text[AT&T A] d1");
}

TEST(SaxParserTest, CdataDeliveredVerbatim) {
  auto t = Parse("<a><![CDATA[<not> & parsed]]></a>");
  EXPECT_EQ(t[2], "text[<not> & parsed] d1");
}

TEST(SaxParserTest, CommentsDelivered) {
  auto t = Parse("<a><!-- note --></a>");
  EXPECT_EQ(t[2], "comment[ note ]");
}

TEST(SaxParserTest, ProcessingInstruction) {
  auto t = Parse("<?xml version=\"1.0\"?><a><?target some data?></a>");
  EXPECT_EQ(t[1], "pi xml [version=\"1.0\"]");
  EXPECT_EQ(t[3], "pi target [some data]");
}

TEST(SaxParserTest, DoctypeSkipped) {
  auto t = Parse("<!DOCTYPE book [<!ELEMENT book (#PCDATA)>]><book/>");
  std::vector<std::string> expected = {"startdoc", "start book d1",
                                       "end book d1", "enddoc"};
  EXPECT_EQ(t, expected);
}

TEST(SaxParserTest, MixedContent) {
  auto t = Parse("<a>x<b>y</b>z</a>");
  std::vector<std::string> expected = {
      "startdoc",   "start a d1", "text[x] d1", "start b d2", "text[y] d2",
      "end b d2",   "text[z] d1", "end a d1",   "enddoc"};
  EXPECT_EQ(t, expected);
}

TEST(SaxParserTest, EndTagWithTrailingSpace) {
  auto t = Parse("<a></a >");
  std::vector<std::string> expected = {"startdoc", "start a d1", "end a d1",
                                       "enddoc"};
  EXPECT_EQ(t, expected);
}

TEST(SaxParserTest, Utf8NamesAndText) {
  auto t = Parse("<\xc3\xa9l\xc3\xa9ment>caf\xc3\xa9</\xc3\xa9l\xc3\xa9ment>");
  EXPECT_EQ(t[1], "start \xc3\xa9l\xc3\xa9ment d1");
  EXPECT_EQ(t[2], "text[caf\xc3\xa9] d1");
}

// --- Error cases -----------------------------------------------------------

TEST(SaxParserErrorTest, MismatchedEndTag) {
  Status s = ParseStatus("<a><b></a></b>");
  EXPECT_TRUE(s.IsParseError());
  EXPECT_NE(s.message().find("mismatched"), std::string::npos) << s;
}

TEST(SaxParserErrorTest, UnclosedElement) {
  Status s = ParseStatus("<a><b></b>");
  EXPECT_TRUE(s.IsParseError());
  EXPECT_NE(s.message().find("unclosed"), std::string::npos) << s;
}

TEST(SaxParserErrorTest, MultipleRoots) {
  Status s = ParseStatus("<a/><b/>");
  EXPECT_TRUE(s.IsParseError());
  EXPECT_NE(s.message().find("multiple root"), std::string::npos) << s;
}

TEST(SaxParserErrorTest, NoRootElement) {
  EXPECT_TRUE(ParseStatus("").IsParseError());
  EXPECT_TRUE(ParseStatus("<!-- only a comment -->").IsParseError());
}

TEST(SaxParserErrorTest, TextOutsideRoot) {
  EXPECT_TRUE(ParseStatus("junk<a/>").IsParseError());
  EXPECT_TRUE(ParseStatus("<a/>junk").IsParseError());
}

TEST(SaxParserErrorTest, WhitespaceOutsideRootIsFine) {
  EXPECT_TRUE(ParseStatus("  <a/>  \n").ok());
}

TEST(SaxParserErrorTest, UnquotedAttributeValue) {
  EXPECT_TRUE(ParseStatus("<a x=1/>").IsParseError());
}

TEST(SaxParserErrorTest, AttributeWithoutValue) {
  EXPECT_TRUE(ParseStatus("<a disabled/>").IsParseError());
}

TEST(SaxParserErrorTest, DuplicateAttribute) {
  Status s = ParseStatus(R"(<a x="1" x="2"/>)");
  EXPECT_TRUE(s.IsParseError());
  EXPECT_NE(s.message().find("duplicate"), std::string::npos) << s;
}

TEST(SaxParserErrorTest, DuplicateAttributeAllowedWhenConfigured) {
  SaxParserOptions options;
  options.reject_duplicate_attributes = false;
  EXPECT_TRUE(ParseStatus(R"(<a x="1" x="2"/>)", options).ok());
}

TEST(SaxParserErrorTest, InvalidElementName) {
  EXPECT_TRUE(ParseStatus("<1a/>").IsParseError());
}

TEST(SaxParserErrorTest, BadEntityInText) {
  EXPECT_TRUE(ParseStatus("<a>&bogus;</a>").IsParseError());
}

TEST(SaxParserErrorTest, LessThanInAttributeValue) {
  EXPECT_TRUE(ParseStatus(R"(<a x="a<b"/>)").IsParseError());
}

TEST(SaxParserErrorTest, TruncatedDocuments) {
  EXPECT_TRUE(ParseStatus("<a>").IsParseError());
  EXPECT_TRUE(ParseStatus("<a").IsParseError());
  EXPECT_TRUE(ParseStatus("<a><!-- unterminated").IsParseError());
  EXPECT_TRUE(ParseStatus("<a><![CDATA[xx").IsParseError());
  EXPECT_TRUE(ParseStatus("<a><?pi data").IsParseError());
}

TEST(SaxParserErrorTest, DepthLimitEnforced) {
  SaxParserOptions options;
  options.max_depth = 3;
  EXPECT_TRUE(ParseStatus("<a><b><c/></b></a>", options).ok());
  EXPECT_TRUE(
      ParseStatus("<a><b><c><d/></c></b></a>", options).IsResourceExhausted());
}

TEST(SaxParserErrorTest, CommentDoubleDashRejected) {
  EXPECT_TRUE(ParseStatus("<a><!-- bad -- comment --></a>").IsParseError());
}

TEST(SaxParserErrorTest, FeedAfterFinishRejected) {
  TraceHandler handler;
  SaxParser parser(&handler);
  ASSERT_TRUE(parser.Feed("<a/>").ok());
  ASSERT_TRUE(parser.Finish().ok());
  EXPECT_TRUE(parser.Feed("<b/>").IsInvalidArgument());
}

TEST(SaxParserErrorTest, ResetAllowsReuse) {
  TraceHandler handler;
  SaxParser parser(&handler);
  ASSERT_TRUE(parser.Feed("<a/>").ok());
  ASSERT_TRUE(parser.Finish().ok());
  parser.Reset();
  handler.trace.clear();
  ASSERT_TRUE(parser.Feed("<b/>").ok());
  ASSERT_TRUE(parser.Finish().ok());
  std::vector<std::string> expected = {"startdoc", "start b d1", "end b d1",
                                       "enddoc"};
  EXPECT_EQ(handler.trace, expected);
}

// --- Stats ------------------------------------------------------------------

TEST(SaxParserStatsTest, CountersAccumulate) {
  TraceHandler handler;
  SaxParser parser(&handler);
  ASSERT_TRUE(parser.Feed(R"(<a x="1"><b>t</b><c y="2" z="3"/></a>)").ok());
  ASSERT_TRUE(parser.Finish().ok());
  const SaxParserStats& stats = parser.stats();
  EXPECT_EQ(stats.start_elements, 3u);
  EXPECT_EQ(stats.attributes, 3u);
  EXPECT_EQ(stats.text_events, 1u);
  EXPECT_EQ(stats.max_depth, 2);
}

// --- Handler abort ----------------------------------------------------------

class AbortingHandler : public ContentHandler {
 public:
  Status StartElement(const StartElementEvent& event) override {
    if (event.name == "poison") return Status::Unsupported("poison tag");
    return Status::OK();
  }
};

TEST(SaxParserTest, HandlerErrorAbortsParse) {
  AbortingHandler handler;
  Status s = ParseString("<a><poison/></a>", &handler);
  EXPECT_TRUE(s.IsUnsupported());
}

}  // namespace
}  // namespace vitex::xml
