#include "xml/dom.h"

#include <gtest/gtest.h>

namespace vitex::xml {
namespace {

Document MustParse(std::string_view xml) {
  auto doc = ParseIntoDom(xml);
  EXPECT_TRUE(doc.ok()) << doc.status();
  return std::move(doc).value();
}

TEST(DomTest, RootAndChildren) {
  Document doc = MustParse("<a><b/><c/></a>");
  const DomNode* root = doc.root();
  ASSERT_NE(root, nullptr);
  EXPECT_EQ(root->name, "a");
  EXPECT_EQ(root->depth, 1);
  const DomNode* b = root->first_child;
  ASSERT_NE(b, nullptr);
  EXPECT_EQ(b->name, "b");
  EXPECT_EQ(b->depth, 2);
  const DomNode* c = b->next_sibling;
  ASSERT_NE(c, nullptr);
  EXPECT_EQ(c->name, "c");
  EXPECT_EQ(c->next_sibling, nullptr);
  EXPECT_EQ(root->last_child, c);
}

TEST(DomTest, ParentPointers) {
  Document doc = MustParse("<a><b><c/></b></a>");
  const DomNode* root = doc.root();
  const DomNode* b = root->first_child;
  const DomNode* c = b->first_child;
  EXPECT_EQ(c->parent, b);
  EXPECT_EQ(b->parent, root);
  EXPECT_EQ(root->parent, doc.document_node());
}

TEST(DomTest, DocumentOrderIsPreorder) {
  Document doc = MustParse("<a><b><c/></b><d/></a>");
  const DomNode* root = doc.root();
  const DomNode* b = root->first_child;
  const DomNode* c = b->first_child;
  const DomNode* d = b->next_sibling;
  EXPECT_LT(root->order, b->order);
  EXPECT_LT(b->order, c->order);
  EXPECT_LT(c->order, d->order);
}

TEST(DomTest, Attributes) {
  Document doc = MustParse(R"(<a x="1" y="2"/>)");
  const DomNode* root = doc.root();
  const DomNode* x = root->FindAttribute("x");
  ASSERT_NE(x, nullptr);
  EXPECT_TRUE(x->IsAttribute());
  EXPECT_EQ(x->value, "1");
  EXPECT_EQ(x->parent, root);
  const DomNode* y = root->FindAttribute("y");
  ASSERT_NE(y, nullptr);
  EXPECT_EQ(y->value, "2");
  EXPECT_EQ(root->FindAttribute("z"), nullptr);
}

TEST(DomTest, TextNodes) {
  Document doc = MustParse("<a>x<b/>y</a>");
  const DomNode* root = doc.root();
  const DomNode* t1 = root->first_child;
  ASSERT_TRUE(t1->IsText());
  EXPECT_EQ(t1->value, "x");
  const DomNode* b = t1->next_sibling;
  EXPECT_TRUE(b->IsElement());
  const DomNode* t2 = b->next_sibling;
  ASSERT_TRUE(t2->IsText());
  EXPECT_EQ(t2->value, "y");
}

TEST(DomTest, StringValueConcatenatesDescendantText) {
  Document doc = MustParse("<a>x<b>y<c>z</c></b>w</a>");
  EXPECT_EQ(Document::StringValue(doc.root()), "xyzw");
  const DomNode* b = doc.root()->first_child->next_sibling;
  EXPECT_EQ(Document::StringValue(b), "yz");
}

TEST(DomTest, StringValueOfTextAndAttributeNodes) {
  Document doc = MustParse(R"(<a k="v">txt</a>)");
  EXPECT_EQ(Document::StringValue(doc.root()->first_child), "txt");
  EXPECT_EQ(Document::StringValue(doc.root()->FindAttribute("k")), "v");
}

TEST(DomTest, SerializeRoundTrip) {
  const std::string cases[] = {
      "<a/>",
      "<a><b/><c/></a>",
      "<a x=\"1\"><b>text</b></a>",
      "<a>x<b/>y</a>",
  };
  for (const std::string& xml : cases) {
    Document doc = MustParse(xml);
    EXPECT_EQ(Document::Serialize(doc.root()), xml);
  }
}

TEST(DomTest, SerializeEscapes) {
  Document doc = MustParse("<a x=\"1&amp;2\">a&lt;b</a>");
  EXPECT_EQ(Document::Serialize(doc.root()), "<a x=\"1&amp;2\">a&lt;b</a>");
}

TEST(DomTest, NodeCountIncludesAllKinds) {
  Document doc = MustParse(R"(<a x="1"><b>t</b></a>)");
  // document + a + @x + b + text
  EXPECT_EQ(doc.node_count(), 5u);
}

TEST(DomTest, AdjacentTextCoalesced) {
  // CDATA creates a second Characters event; the DOM must merge them.
  Document doc = MustParse("<a>one<![CDATA[two]]>three</a>");
  const DomNode* t = doc.root()->first_child;
  ASSERT_TRUE(t->IsText());
  EXPECT_EQ(t->value, "onetwothree");
  EXPECT_EQ(t->next_sibling, nullptr);
}

TEST(DomTest, DepthAssignments) {
  Document doc = MustParse(R"(<a><b k="v">t</b></a>)");
  const DomNode* b = doc.root()->first_child;
  EXPECT_EQ(b->depth, 2);
  EXPECT_EQ(b->FindAttribute("k")->depth, 3);
  EXPECT_EQ(b->first_child->depth, 3);  // text
}

TEST(DomTest, ParseFileIntoDomMissingFileFails) {
  auto r = ParseFileIntoDom("/nonexistent/file.xml");
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsIoError());
}

TEST(DomTest, MalformedInputPropagatesParseError) {
  auto r = ParseIntoDom("<a><b></a>");
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsParseError());
}

TEST(DomTest, MoveSemantics) {
  Document doc = MustParse("<a><b/></a>");
  const DomNode* root_before = doc.root();
  Document moved = std::move(doc);
  EXPECT_EQ(moved.root(), root_before);
  EXPECT_EQ(moved.root()->name, "a");
}

}  // namespace
}  // namespace vitex::xml
