#include "xml/writer.h"

#include <gtest/gtest.h>

#include "xml/dom.h"
#include "xml/sax_parser.h"

namespace vitex::xml {
namespace {

std::string Write(const std::function<Status(XmlWriter*)>& body,
                  XmlWriter::Options options = {}) {
  std::string out;
  StringSink sink(&out);
  XmlWriter w(&sink, options);
  Status s = body(&w);
  EXPECT_TRUE(s.ok()) << s;
  EXPECT_TRUE(w.Finish().ok());
  return out;
}

XmlWriter::Options NoDecl() {
  XmlWriter::Options options;
  options.declaration = false;
  return options;
}

TEST(XmlWriterTest, MinimalElement) {
  std::string out = Write(
      [](XmlWriter* w) -> Status {
        VITEX_RETURN_IF_ERROR(w->StartElement("a"));
        return w->EndElement();
      },
      NoDecl());
  EXPECT_EQ(out, "<a/>");
}

TEST(XmlWriterTest, DeclarationWrittenByDefault) {
  std::string out = Write([](XmlWriter* w) -> Status {
    VITEX_RETURN_IF_ERROR(w->StartElement("a"));
    return w->EndElement();
  });
  EXPECT_EQ(out, "<?xml version=\"1.0\" encoding=\"UTF-8\"?><a/>");
}

TEST(XmlWriterTest, TextElementEscapes) {
  std::string out = Write(
      [](XmlWriter* w) -> Status {
        VITEX_RETURN_IF_ERROR(w->StartElement("a"));
        VITEX_RETURN_IF_ERROR(w->TextElement("b", "x<y & z"));
        return w->EndElement();
      },
      NoDecl());
  EXPECT_EQ(out, "<a><b>x&lt;y &amp; z</b></a>");
}

TEST(XmlWriterTest, AttributesEscaped) {
  std::string out = Write(
      [](XmlWriter* w) -> Status {
        VITEX_RETURN_IF_ERROR(w->StartElement("a"));
        VITEX_RETURN_IF_ERROR(w->AddAttribute("x", "say \"hi\" & <bye>"));
        return w->EndElement();
      },
      NoDecl());
  EXPECT_EQ(out, "<a x=\"say &quot;hi&quot; &amp; &lt;bye&gt;\"/>");
}

TEST(XmlWriterTest, NestedStructure) {
  std::string out = Write(
      [](XmlWriter* w) -> Status {
        VITEX_RETURN_IF_ERROR(w->StartElement("book"));
        VITEX_RETURN_IF_ERROR(w->StartElement("section"));
        VITEX_RETURN_IF_ERROR(w->TextElement("title", "Intro"));
        VITEX_RETURN_IF_ERROR(w->EndElement());
        return w->EndElement();
      },
      NoDecl());
  EXPECT_EQ(out, "<book><section><title>Intro</title></section></book>");
}

TEST(XmlWriterTest, CommentWritten) {
  std::string out = Write(
      [](XmlWriter* w) -> Status {
        VITEX_RETURN_IF_ERROR(w->StartElement("a"));
        VITEX_RETURN_IF_ERROR(w->Comment(" note "));
        return w->EndElement();
      },
      NoDecl());
  EXPECT_EQ(out, "<a><!-- note --></a>");
}

TEST(XmlWriterTest, IndentedOutput) {
  XmlWriter::Options options;
  options.declaration = false;
  options.indent = 2;
  std::string out = Write(
      [](XmlWriter* w) -> Status {
        VITEX_RETURN_IF_ERROR(w->StartElement("a"));
        VITEX_RETURN_IF_ERROR(w->StartElement("b"));
        VITEX_RETURN_IF_ERROR(w->EndElement());
        return w->EndElement();
      },
      options);
  EXPECT_EQ(out, "<a>\n  <b/>\n</a>\n");
}

TEST(XmlWriterErrorTest, InvalidNamesRejected) {
  std::string out;
  StringSink sink(&out);
  XmlWriter w(&sink);
  EXPECT_TRUE(w.StartElement("1bad").IsInvalidArgument());
  ASSERT_TRUE(w.StartElement("ok").ok());
  EXPECT_TRUE(w.AddAttribute("2bad", "v").IsInvalidArgument());
}

TEST(XmlWriterErrorTest, UnbalancedEndRejected) {
  std::string out;
  StringSink sink(&out);
  XmlWriter w(&sink);
  EXPECT_TRUE(w.EndElement().IsInvalidArgument());
}

TEST(XmlWriterErrorTest, FinishWithOpenElementRejected) {
  std::string out;
  StringSink sink(&out);
  XmlWriter w(&sink);
  ASSERT_TRUE(w.StartElement("a").ok());
  EXPECT_TRUE(w.Finish().IsInvalidArgument());
}

TEST(XmlWriterErrorTest, AttributeAfterContentRejected) {
  std::string out;
  StringSink sink(&out);
  XmlWriter w(&sink);
  ASSERT_TRUE(w.StartElement("a").ok());
  ASSERT_TRUE(w.Text("body").ok());
  EXPECT_TRUE(w.AddAttribute("x", "1").IsInvalidArgument());
}

TEST(XmlWriterErrorTest, TextOutsideRootRejected) {
  std::string out;
  StringSink sink(&out);
  XmlWriter w(&sink);
  EXPECT_TRUE(w.Text("dangling").IsInvalidArgument());
}

TEST(XmlWriterErrorTest, DoubleDashCommentRejected) {
  std::string out;
  StringSink sink(&out);
  XmlWriter w(&sink);
  ASSERT_TRUE(w.StartElement("a").ok());
  EXPECT_TRUE(w.Comment("a -- b").IsInvalidArgument());
}

// Round trip: whatever the writer produces, the parser accepts and the DOM
// reproduces the logical structure.
TEST(XmlWriterRoundTripTest, WriterOutputParses) {
  std::string out = Write(
      [](XmlWriter* w) -> Status {
        VITEX_RETURN_IF_ERROR(w->StartElement("root"));
        VITEX_RETURN_IF_ERROR(w->AddAttribute("version", "1 & \"2\""));
        VITEX_RETURN_IF_ERROR(w->TextElement("item", "<escaped> & 'fine'"));
        VITEX_RETURN_IF_ERROR(w->StartElement("empty"));
        VITEX_RETURN_IF_ERROR(w->EndElement());
        return w->EndElement();
      },
      NoDecl());
  auto doc = ParseIntoDom(out);
  ASSERT_TRUE(doc.ok()) << doc.status();
  const DomNode* root = doc->root();
  ASSERT_NE(root, nullptr);
  EXPECT_EQ(root->name, "root");
  const DomNode* version = root->FindAttribute("version");
  ASSERT_NE(version, nullptr);
  EXPECT_EQ(version->value, "1 & \"2\"");
  const DomNode* item = root->first_child;
  ASSERT_NE(item, nullptr);
  EXPECT_EQ(item->name, "item");
  EXPECT_EQ(Document::StringValue(item), "<escaped> & 'fine'");
}

TEST(FileSinkTest, WritesAndReportsBytes) {
  std::string path = ::testing::TempDir() + "/vitex_filesink_test.xml";
  {
    FileSink sink;
    ASSERT_TRUE(sink.Open(path).ok());
    XmlWriter w(&sink, [] {
      XmlWriter::Options o;
      o.declaration = false;
      return o;
    }());
    ASSERT_TRUE(w.StartElement("a").ok());
    ASSERT_TRUE(w.Text("hello").ok());
    ASSERT_TRUE(w.EndElement().ok());
    ASSERT_TRUE(w.Finish().ok());
    EXPECT_EQ(sink.bytes_written(), std::string("<a>hello</a>").size());
    ASSERT_TRUE(sink.Close().ok());
  }
  class Counter : public ContentHandler {
   public:
    Status Characters(std::string_view text, int) override {
      collected += std::string(text);
      return Status::OK();
    }
    std::string collected;
  } counter;
  ASSERT_TRUE(ParseFile(path, &counter).ok());
  EXPECT_EQ(counter.collected, "hello");
  std::remove(path.c_str());
}

TEST(FileSinkTest, OpenFailureReported) {
  FileSink sink;
  EXPECT_TRUE(sink.Open("/nonexistent-dir-xyz/file.xml").IsIoError());
}

}  // namespace
}  // namespace vitex::xml
