// Tests for the stream tooling built on the SAX interface: statistics
// collection and pretty-printing/canonicalization.

#include <gtest/gtest.h>

#include "common/random.h"
#include "workload/protein_generator.h"
#include "workload/random_generator.h"
#include "xml/pretty_printer.h"
#include "xml/sax_parser.h"
#include "xml/stream_stats.h"

namespace vitex::xml {
namespace {

TEST(StreamStatsTest, CountsBasics) {
  StreamStatsHandler stats;
  ASSERT_TRUE(
      ParseString(R"(<a x="1"><b>text</b><b/><c depth="2"/></a>)", &stats)
          .ok());
  EXPECT_EQ(stats.elements(), 4u);
  EXPECT_EQ(stats.attributes(), 2u);
  EXPECT_EQ(stats.text_nodes(), 1u);
  EXPECT_EQ(stats.text_bytes(), 4u);
  EXPECT_EQ(stats.max_depth(), 2);
  EXPECT_EQ(stats.tag_count("b"), 2u);
  EXPECT_EQ(stats.tag_count("nope"), 0u);
  EXPECT_EQ(stats.distinct_tags(), 3u);
}

TEST(StreamStatsTest, MeanDepth) {
  StreamStatsHandler stats;
  ASSERT_TRUE(ParseString("<a><b><c/></b></a>", &stats).ok());
  EXPECT_DOUBLE_EQ(stats.mean_depth(), 2.0);  // (1+2+3)/3
}

TEST(StreamStatsTest, TopTagsSorted) {
  StreamStatsHandler stats;
  ASSERT_TRUE(ParseString("<r><x/><x/><x/><y/><y/><z/></r>", &stats).ok());
  auto top = stats.TopTags(2);
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0].first, "x");
  EXPECT_EQ(top[0].second, 3u);
  EXPECT_EQ(top[1].first, "y");
}

TEST(StreamStatsTest, ValidatesProteinGeneratorShape) {
  workload::ProteinOptions options;
  options.entries = 100;
  options.reference_probability = 1.0;
  auto doc = workload::GenerateProteinString(options);
  ASSERT_TRUE(doc.ok());
  StreamStatsHandler stats;
  ASSERT_TRUE(ParseString(doc.value(), &stats).ok());
  EXPECT_EQ(stats.tag_count("ProteinEntry"), 100u);
  EXPECT_GE(stats.tag_count("reference"), 100u);  // 1-3 per entry
  EXPECT_EQ(stats.tag_count("sequence"), 100u);
  EXPECT_GE(stats.max_depth(), 5);
  std::string report = stats.Report();
  EXPECT_NE(report.find("ProteinEntry"), std::string::npos);
}

TEST(PrettyPrintTest, IndentsNesting) {
  auto out = PrettyPrint("<a><b><c/></b></a>", 2);
  ASSERT_TRUE(out.ok()) << out.status();
  EXPECT_EQ(out.value(),
            "<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n"
            "<a>\n  <b>\n    <c/>\n  </b>\n</a>\n");
}

TEST(PrettyPrintTest, PreservesTextAndAttributes) {
  auto out = PrettyPrint(R"(<a k="v">hi</a>)", 2);
  ASSERT_TRUE(out.ok());
  EXPECT_NE(out->find("k=\"v\""), std::string::npos);
  EXPECT_NE(out->find(">hi<"), std::string::npos);
}

TEST(CanonicalizeTest, StripsInsignificantWhitespace) {
  auto a = Canonicalize("<a>\n  <b/>\n</a>");
  auto b = Canonicalize("<a><b/></a>");
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a.value(), b.value());
  EXPECT_EQ(b.value(), "<a><b/></a>");
}

TEST(CanonicalizeTest, NormalizesEntitiesAndCdata) {
  auto a = Canonicalize("<a>x&#60;y</a>");
  auto b = Canonicalize("<a><![CDATA[x<y]]></a>");
  auto c = Canonicalize("<a>x&lt;y</a>");
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_TRUE(c.ok());
  EXPECT_EQ(a.value(), b.value());
  EXPECT_EQ(b.value(), c.value());
}

TEST(CanonicalizeTest, Idempotent) {
  Random rng(321);
  workload::RandomDocOptions options;
  options.max_elements = 50;
  for (int i = 0; i < 20; ++i) {
    std::string doc = workload::GenerateRandomDocument(options, &rng);
    auto once = Canonicalize(doc);
    ASSERT_TRUE(once.ok());
    auto twice = Canonicalize(once.value());
    ASSERT_TRUE(twice.ok());
    EXPECT_EQ(once.value(), twice.value());
  }
}

TEST(CanonicalizeTest, PrettyThenCanonicalEqualsCanonical) {
  Random rng(99);
  workload::RandomDocOptions options;
  options.max_elements = 40;
  options.text_probability = 0.0;  // indentation merges with real text
  for (int i = 0; i < 20; ++i) {
    std::string doc = workload::GenerateRandomDocument(options, &rng);
    auto pretty = PrettyPrint(doc, 4);
    ASSERT_TRUE(pretty.ok());
    auto canon1 = Canonicalize(pretty.value());
    auto canon2 = Canonicalize(doc);
    ASSERT_TRUE(canon1.ok());
    ASSERT_TRUE(canon2.ok());
    EXPECT_EQ(canon1.value(), canon2.value());
  }
}

TEST(PrettyPrintTest, ErrorsPropagate) {
  EXPECT_FALSE(PrettyPrint("<a><b></a>").ok());
}

}  // namespace
}  // namespace vitex::xml
