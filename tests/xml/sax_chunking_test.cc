// Property tests: the parser must produce identical event sequences no
// matter how the input stream is chunked — the defining property of a
// streaming (push) parser.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/random.h"
#include "feed_split_helpers.h"
#include "workload/random_generator.h"
#include "xml/sax_parser.h"

namespace vitex::xml {
namespace {

class CollectingHandler : public ContentHandler {
 public:
  Status StartElement(const StartElementEvent& event) override {
    events.push_back("S:" + std::string(event.name) + ":" +
                     std::to_string(event.depth));
    for (const Attribute& a : event.attributes) {
      events.push_back("A:" + std::string(a.name) + "=" +
                       std::string(a.value));
    }
    return Status::OK();
  }
  Status EndElement(std::string_view name, int depth) override {
    events.push_back("E:" + std::string(name) + ":" + std::to_string(depth));
    return Status::OK();
  }
  Status Characters(std::string_view text, int depth) override {
    // Adjacent text events are concatenated: chunking may split a text node
    // arbitrarily, so the canonical form merges runs.
    std::string tag = "T:" + std::to_string(depth) + ":";
    if (!events.empty() && events.back().rfind(tag, 0) == 0) {
      events.back() += std::string(text);
    } else {
      events.push_back(tag + std::string(text));
    }
    return Status::OK();
  }

  std::vector<std::string> events;
};

std::vector<std::string> ParseChunked(const std::string& doc,
                                      size_t chunk_size) {
  CollectingHandler handler;
  SaxParser parser(&handler);
  for (size_t i = 0; i < doc.size(); i += chunk_size) {
    size_t len = std::min(chunk_size, doc.size() - i);
    Status s = parser.Feed(std::string_view(doc).substr(i, len));
    EXPECT_TRUE(s.ok()) << "chunk_size=" << chunk_size << ": " << s;
    if (!s.ok()) return handler.events;
  }
  Status s = parser.Finish();
  EXPECT_TRUE(s.ok()) << "chunk_size=" << chunk_size << ": " << s;
  return handler.events;
}

// A document exercising every token kind, designed so chunk boundaries land
// inside tags, attribute values, entities, CDATA markers and comments.
const char kTortureDoc[] =
    R"(<?xml version="1.0"?><!DOCTYPE r [<!ELEMENT r ANY>]><r a="1&amp;2">)"
    R"(text &lt;here&gt; more<!-- a comment --><child x="y z">nested)"
    R"(<![CDATA[raw <> & data]]>tail</child><empty/>&#65;&#x42;</r>)";

class ChunkSizeTest : public ::testing::TestWithParam<size_t> {};

TEST_P(ChunkSizeTest, EventsIndependentOfChunking) {
  std::string doc(kTortureDoc);
  std::vector<std::string> whole = ParseChunked(doc, doc.size());
  std::vector<std::string> chunked = ParseChunked(doc, GetParam());
  EXPECT_EQ(whole, chunked) << "chunk size " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(AllSizes, ChunkSizeTest,
                         ::testing::Values(1, 2, 3, 5, 7, 13, 31, 64, 257));

TEST(ChunkingPropertyTest, RandomDocumentsAllChunkings) {
  Random rng(2024);
  workload::RandomDocOptions options;
  options.max_elements = 60;
  for (int trial = 0; trial < 20; ++trial) {
    std::string doc = workload::GenerateRandomDocument(options, &rng);
    std::vector<std::string> whole = ParseChunked(doc, doc.size());
    for (size_t chunk : {1, 3, 17}) {
      EXPECT_EQ(whole, ParseChunked(doc, chunk))
          << "trial " << trial << " chunk " << chunk << "\ndoc: " << doc;
    }
  }
}

TEST(ChunkingPropertyTest, RandomChunkBoundaries) {
  Random rng(99);
  workload::RandomDocOptions options;
  options.max_elements = 40;
  for (int trial = 0; trial < 10; ++trial) {
    std::string doc = workload::GenerateRandomDocument(options, &rng);
    std::vector<std::string> whole = ParseChunked(doc, doc.size());
    // Random split points.
    CollectingHandler handler;
    SaxParser parser(&handler);
    size_t pos = 0;
    while (pos < doc.size()) {
      size_t len = 1 + rng.Uniform(9);
      len = std::min(len, doc.size() - pos);
      ASSERT_TRUE(parser.Feed(std::string_view(doc).substr(pos, len)).ok());
      pos += len;
    }
    ASSERT_TRUE(parser.Finish().ok());
    EXPECT_EQ(whole, handler.events) << "trial " << trial;
  }
}

TEST(ChunkingTest, ErrorDetectionIndependentOfChunking) {
  const std::string bad = "<a><b>mismatch</a></b>";
  const size_t chunks[] = {1, 4, bad.size()};
  for (size_t chunk : chunks) {
    CollectingHandler handler;
    SaxParser parser(&handler);
    Status status = Status::OK();
    for (size_t i = 0; i < bad.size() && status.ok(); i += chunk) {
      status = parser.Feed(
          std::string_view(bad).substr(i, std::min(chunk, bad.size() - i)));
    }
    if (status.ok()) status = parser.Finish();
    EXPECT_TRUE(status.IsParseError()) << "chunk " << chunk;
  }
}

// ---------------------------------------------------------------------------
// FeedSplitEverywhere corpus: every document below is parsed whole, at every
// two-chunk split point, and byte at a time; the canonical event streams
// (including sequence stamps) and final statuses must be identical. This is
// the satellite harness that found / pins the whitespace-staging fixes.
// ---------------------------------------------------------------------------

TEST(FeedSplitEverywhereTest, WellFormednessCorpus) {
  const char* corpus[] = {
      kTortureDoc,
      "<a/>",
      "<a x=\"1\" y=\"2\"><b/>text</a>",
      "<a>one<b>two</b>three</a>",
      // Entities straddling any split point.
      "<a>a&amp;b&lt;c&gt;d&quot;e&apos;f</a>",
      "<a x=\"v&amp;w\">&#65;&#x42;</a>",
      // CDATA with markup-significant content and surrounding text.
      "<a>x<![CDATA[<not>&a;tag]]>y</a>",
      "<a><![CDATA[]]></a>",
      // Comments and PIs inside and between text pieces.
      "<a>x<!-- c -->y<?pi data?>z</a>",
      "<?xml version=\"1.0\"?><!-- lead --><a/><!-- trail -->",
      "<!DOCTYPE r [<!ENTITY x \"y\">]><r>t</r>",
      // Whitespace interacting with CDATA / comments / entities — the node-
      // level suppression cases.
      "<a>x<![CDATA[ ]]>y</a>",
      "<a> <![CDATA[x]]></a>",
      "<a><![CDATA[ ]]></a>",
      "<a>x<!--c--> </a>",
      "<a> <!--c--> </a>",
      "<a>&#32;</a>",
      "<a>&#x20;</a>",
      "<a> &#32; </a>",
      "<a>  <b/>  </a>",
      // Self-closing and deep nesting.
      "<a><b><c><d/></c></b></a>",
  };
  for (const char* doc : corpus) {
    FeedSplitEverywhere(doc, SaxParserOptions(), "skip_whitespace=true");
    SaxParserOptions keep_ws;
    keep_ws.skip_whitespace_text = false;
    FeedSplitEverywhere(doc, keep_ws, "skip_whitespace=false");
  }
}

TEST(FeedSplitEverywhereTest, ErrorCorpusFailsIdentically) {
  const char* corpus[] = {
      "<a><b>mismatch</a></b>",
      "<a>unclosed",
      "<a x=1></a>",
      "<a x=\"1></a>",
      "<a><!-- -- --></a>",
      "<a>&unknown;</a>",
      "<a/><b/>",
      "text outside<a/>",
  };
  for (const char* doc : corpus) {
    FeedSplitEverywhere(doc, SaxParserOptions(), "error corpus");
  }
}

TEST(FeedSplitEverywhereTest, RandomMarkupRichDocuments) {
  Random rng(4242);
  workload::RandomDocOptions options;
  options.max_elements = 25;
  options.comment_probability = 0.2;
  options.cdata_probability = 0.25;
  options.entity_probability = 0.25;
  options.padded_text_probability = 0.3;
  options.whitespace_text_probability = 0.2;
  for (int trial = 0; trial < 12; ++trial) {
    std::string doc = workload::GenerateRandomDocument(options, &rng);
    FeedSplitEverywhere(doc, SaxParserOptions(),
                        "random trial " + std::to_string(trial));
  }
}

// Regression: a whitespace-only text run longer than the parser's hold
// buffer used to be delivered piecemeal when fed in chunks but suppressed
// entirely when fed whole — the first divergence the split harness caught.
// The fix stages leading whitespace up to the hold budget and, beyond it,
// delivers the run as content in BOTH parse modes (the decision depends
// only on cumulative size, so it is chunk-invariant, and parser memory
// stays bounded). (Byte-at-a-time over 80 KB is quadratic, so this one
// probes fixed chunk sizes around the 64 KB hold boundary instead of
// every split.)
TEST(FeedSplitEverywhereTest, LongWhitespaceRunHandledIdenticallyChunked) {
  std::string doc = "<a>" + std::string(80 * 1024, ' ') + "<b/></a>";
  CanonicalParse whole = ParseWithBoundaries(doc, {});
  EXPECT_TRUE(whole.status.ok()) << whole.status;
  bool has_text = false;
  for (const std::string& e : whole.events) has_text |= e[0] == 'T';
  EXPECT_TRUE(has_text);  // beyond the hold budget: delivered as content
  for (size_t chunk : {4096u, 65536u, 65537u}) {
    CanonicalParse chunked = ParseWithChunkSize(doc, chunk);
    EXPECT_EQ(whole, chunked) << "chunk size " << chunk;
  }

  // Below the hold budget the node-level rule applies: suppressed, and
  // suppressed identically under chunking.
  std::string small = "<a>" + std::string(32 * 1024, ' ') + "<b/></a>";
  CanonicalParse small_whole = ParseWithBoundaries(small, {});
  EXPECT_TRUE(small_whole.status.ok());
  for (const std::string& e : small_whole.events) {
    EXPECT_NE(e[0], 'T') << e;
  }
  for (size_t chunk : {4096u, 32768u}) {
    EXPECT_EQ(small_whole, ParseWithChunkSize(small, chunk))
        << "chunk size " << chunk;
  }
}

// Regression: long non-whitespace runs flush early; a whitespace tail piece
// of such a run is *content* (the node is not whitespace-only) and must
// survive chunked parsing identically.
TEST(FeedSplitEverywhereTest, LongTextRunWithWhitespaceTail) {
  std::string doc =
      "<a>" + std::string(70 * 1024, 'x') + std::string(1024, ' ') + "</a>";
  CanonicalParse whole = ParseWithBoundaries(doc, {});
  ASSERT_TRUE(whole.status.ok()) << whole.status;
  for (size_t chunk : {4096u, 65536u}) {
    CanonicalParse chunked = ParseWithChunkSize(doc, chunk);
    EXPECT_EQ(whole, chunked) << "chunk size " << chunk;
  }
}

// Regression: whitespace-only CDATA is explicitly marked character data —
// it must be delivered (it used to be silently dropped), and it makes
// adjacent plain whitespace part of a real node.
TEST(FeedSplitEverywhereTest, WhitespaceCdataIsContent) {
  CanonicalParse r = ParseWithBoundaries("<a><![CDATA[ ]]></a>", {});
  ASSERT_TRUE(r.status.ok());
  ASSERT_EQ(r.events.size(), 3u);
  EXPECT_EQ(r.events[1], "T:1:1: ");

  // "x" + CDATA space + "y" is ONE node "x y", not "xy".
  r = ParseWithBoundaries("<a>x<![CDATA[ ]]>y</a>", {});
  ASSERT_TRUE(r.status.ok());
  ASSERT_EQ(r.events.size(), 3u);
  EXPECT_EQ(r.events[1], "T:1:1:x y");

  // Leading plain whitespace before CDATA content belongs to the node.
  r = ParseWithBoundaries("<a> <![CDATA[x]]></a>", {});
  ASSERT_TRUE(r.status.ok());
  ASSERT_EQ(r.events.size(), 3u);
  EXPECT_EQ(r.events[1], "T:1:1: x");
}

// Regression: a character reference that decodes to whitespace is explicit
// content, not formatting whitespace.
TEST(FeedSplitEverywhereTest, CharacterReferenceWhitespaceIsContent) {
  CanonicalParse r = ParseWithBoundaries("<a>&#32;</a>", {});
  ASSERT_TRUE(r.status.ok());
  ASSERT_EQ(r.events.size(), 3u);
  EXPECT_EQ(r.events[1], "T:1:1: ");
}

// Whitespace after delivered content stays part of the coalesced node even
// when a comment separates the pieces (the node is "x ", not "x").
TEST(FeedSplitEverywhereTest, TrailingWhitespaceAfterCommentStaysInNode) {
  CanonicalParse r = ParseWithBoundaries("<a>x<!--c--> </a>", {});
  ASSERT_TRUE(r.status.ok());
  ASSERT_EQ(r.events.size(), 5u);
  EXPECT_EQ(r.events[1], "T:1:1:x");
  EXPECT_EQ(r.events[2], "C:c");
  EXPECT_EQ(r.events[3], "T:1:1: ");
  EXPECT_EQ(r.events[4], "E:a:1");
}

// Attribute-value chunk seams. Shared-plan subscriptions compare bound
// literals against attribute values (`//quote[@symbol = 'X']` for every
// X), so the parser must deliver each attribute value whole and already
// entity-decoded no matter where a feed boundary lands — inside the value,
// inside an entity or character reference, between the quotes, or between
// name, '=' and the opening quote. FeedSplitEverywhere tries EVERY
// two-chunk split plus byte-at-a-time, with stamps compared.
TEST(FeedSplitEverywhereTest, AttributeValueEntitySeams) {
  const char* docs[] = {
      // Entity references inside values, including back to back.
      R"(<r a="1&amp;2"/>)",
      R"(<r a="&amp;&lt;&gt;&quot;&apos;"/>)",
      // Character references (decimal and hex) mid-value.
      R"(<r sym="&#65;CME&#x21;"/>)",
      // The other quote kind as content, plus '=' and '>' lookalikes.
      R"(<r a='say "hi" = ok>' b="it's fine"/>)",
      // Whitespace and angle-lookalikes around the '=' sign.
      R"(<r  a  =  "v1"  b = 'v2' />)",
      // Several attributes so seams land between value end and next name.
      R"(<q symbol="ACME" price="12.50" note="a&amp;b"><p t="x"/></q>)",
      // Value that is nothing but references.
      R"(<r v="&amp;&amp;&amp;"/>)",
      // Empty values around populated ones.
      R"(<r a="" b="&#32;" c=""/>)",
  };
  for (const char* doc : docs) {
    FeedSplitEverywhere(doc, {}, std::string("attribute seams: ") + doc);
  }
}

TEST(FeedSplitEverywhereTest, AttributeValuesArriveDecodedWhole) {
  // The canonical event stream records attribute values as delivered;
  // entity decoding must have happened before delivery (a machine's value
  // comparison sees "1&2", never "1&amp;2"), and a split inside "&amp;"
  // must not produce a partial value.
  CanonicalParse whole = ParseWithBoundaries(R"(<r a="1&amp;2&#33;"/>)", {});
  ASSERT_TRUE(whole.status.ok());
  bool saw = false;
  for (const std::string& e : whole.events) {
    if (e.rfind("A:", 0) == 0) {
      EXPECT_EQ(e, "A:a=1&2!");
      saw = true;
    }
  }
  EXPECT_TRUE(saw);
}

TEST(ChunkingTest, ParserMemoryStaysBoundedOnLongText) {
  // A single long text run must not accumulate in the parser's buffer.
  CollectingHandler handler;
  SaxParser parser(&handler);
  ASSERT_TRUE(parser.Feed("<a>").ok());
  for (int i = 0; i < 1000; ++i) {
    ASSERT_TRUE(parser.Feed("0123456789abcdef0123456789abcdef").ok());
  }
  ASSERT_TRUE(parser.Feed("</a>").ok());
  ASSERT_TRUE(parser.Finish().ok());
  // 32 KB of text arrived; the collected (merged) text must be intact.
  bool found = false;
  for (const std::string& e : handler.events) {
    if (e.rfind("T:1:", 0) == 0) {
      EXPECT_EQ(e.size(), 4u + 32000u);
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

}  // namespace
}  // namespace vitex::xml
