// Property tests: the parser must produce identical event sequences no
// matter how the input stream is chunked — the defining property of a
// streaming (push) parser.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/random.h"
#include "workload/random_generator.h"
#include "xml/sax_parser.h"

namespace vitex::xml {
namespace {

class CollectingHandler : public ContentHandler {
 public:
  Status StartElement(const StartElementEvent& event) override {
    events.push_back("S:" + std::string(event.name) + ":" +
                     std::to_string(event.depth));
    for (const Attribute& a : event.attributes) {
      events.push_back("A:" + std::string(a.name) + "=" +
                       std::string(a.value));
    }
    return Status::OK();
  }
  Status EndElement(std::string_view name, int depth) override {
    events.push_back("E:" + std::string(name) + ":" + std::to_string(depth));
    return Status::OK();
  }
  Status Characters(std::string_view text, int depth) override {
    // Adjacent text events are concatenated: chunking may split a text node
    // arbitrarily, so the canonical form merges runs.
    std::string tag = "T:" + std::to_string(depth) + ":";
    if (!events.empty() && events.back().rfind(tag, 0) == 0) {
      events.back() += std::string(text);
    } else {
      events.push_back(tag + std::string(text));
    }
    return Status::OK();
  }

  std::vector<std::string> events;
};

std::vector<std::string> ParseChunked(const std::string& doc,
                                      size_t chunk_size) {
  CollectingHandler handler;
  SaxParser parser(&handler);
  for (size_t i = 0; i < doc.size(); i += chunk_size) {
    size_t len = std::min(chunk_size, doc.size() - i);
    Status s = parser.Feed(std::string_view(doc).substr(i, len));
    EXPECT_TRUE(s.ok()) << "chunk_size=" << chunk_size << ": " << s;
    if (!s.ok()) return handler.events;
  }
  Status s = parser.Finish();
  EXPECT_TRUE(s.ok()) << "chunk_size=" << chunk_size << ": " << s;
  return handler.events;
}

// A document exercising every token kind, designed so chunk boundaries land
// inside tags, attribute values, entities, CDATA markers and comments.
const char kTortureDoc[] =
    R"(<?xml version="1.0"?><!DOCTYPE r [<!ELEMENT r ANY>]><r a="1&amp;2">)"
    R"(text &lt;here&gt; more<!-- a comment --><child x="y z">nested)"
    R"(<![CDATA[raw <> & data]]>tail</child><empty/>&#65;&#x42;</r>)";

class ChunkSizeTest : public ::testing::TestWithParam<size_t> {};

TEST_P(ChunkSizeTest, EventsIndependentOfChunking) {
  std::string doc(kTortureDoc);
  std::vector<std::string> whole = ParseChunked(doc, doc.size());
  std::vector<std::string> chunked = ParseChunked(doc, GetParam());
  EXPECT_EQ(whole, chunked) << "chunk size " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(AllSizes, ChunkSizeTest,
                         ::testing::Values(1, 2, 3, 5, 7, 13, 31, 64, 257));

TEST(ChunkingPropertyTest, RandomDocumentsAllChunkings) {
  Random rng(2024);
  workload::RandomDocOptions options;
  options.max_elements = 60;
  for (int trial = 0; trial < 20; ++trial) {
    std::string doc = workload::GenerateRandomDocument(options, &rng);
    std::vector<std::string> whole = ParseChunked(doc, doc.size());
    for (size_t chunk : {1, 3, 17}) {
      EXPECT_EQ(whole, ParseChunked(doc, chunk))
          << "trial " << trial << " chunk " << chunk << "\ndoc: " << doc;
    }
  }
}

TEST(ChunkingPropertyTest, RandomChunkBoundaries) {
  Random rng(99);
  workload::RandomDocOptions options;
  options.max_elements = 40;
  for (int trial = 0; trial < 10; ++trial) {
    std::string doc = workload::GenerateRandomDocument(options, &rng);
    std::vector<std::string> whole = ParseChunked(doc, doc.size());
    // Random split points.
    CollectingHandler handler;
    SaxParser parser(&handler);
    size_t pos = 0;
    while (pos < doc.size()) {
      size_t len = 1 + rng.Uniform(9);
      len = std::min(len, doc.size() - pos);
      ASSERT_TRUE(parser.Feed(std::string_view(doc).substr(pos, len)).ok());
      pos += len;
    }
    ASSERT_TRUE(parser.Finish().ok());
    EXPECT_EQ(whole, handler.events) << "trial " << trial;
  }
}

TEST(ChunkingTest, ErrorDetectionIndependentOfChunking) {
  const std::string bad = "<a><b>mismatch</a></b>";
  const size_t chunks[] = {1, 4, bad.size()};
  for (size_t chunk : chunks) {
    CollectingHandler handler;
    SaxParser parser(&handler);
    Status status = Status::OK();
    for (size_t i = 0; i < bad.size() && status.ok(); i += chunk) {
      status = parser.Feed(
          std::string_view(bad).substr(i, std::min(chunk, bad.size() - i)));
    }
    if (status.ok()) status = parser.Finish();
    EXPECT_TRUE(status.IsParseError()) << "chunk " << chunk;
  }
}

TEST(ChunkingTest, ParserMemoryStaysBoundedOnLongText) {
  // A single long text run must not accumulate in the parser's buffer.
  CollectingHandler handler;
  SaxParser parser(&handler);
  ASSERT_TRUE(parser.Feed("<a>").ok());
  for (int i = 0; i < 1000; ++i) {
    ASSERT_TRUE(parser.Feed("0123456789abcdef0123456789abcdef").ok());
  }
  ASSERT_TRUE(parser.Feed("</a>").ok());
  ASSERT_TRUE(parser.Finish().ok());
  // 32 KB of text arrived; the collected (merged) text must be intact.
  bool found = false;
  for (const std::string& e : handler.events) {
    if (e.rfind("T:1:", 0) == 0) {
      EXPECT_EQ(e.size(), 4u + 32000u);
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

}  // namespace
}  // namespace vitex::xml
