#include "xml/event_log.h"

#include <gtest/gtest.h>

#include "common/random.h"
#include "twigm/engine.h"
#include "twigm/machine.h"
#include "workload/random_generator.h"
#include "xml/sax_parser.h"

namespace vitex::xml {
namespace {

class TraceHandler : public ContentHandler {
 public:
  Status StartElement(const StartElementEvent& event) override {
    trace.push_back("S:" + std::string(event.name) + ":" +
                    std::to_string(event.depth));
    for (const Attribute& a : event.attributes) {
      trace.push_back("A:" + std::string(a.name) + "=" + std::string(a.value));
    }
    return Status::OK();
  }
  Status EndElement(std::string_view name, int depth) override {
    trace.push_back("E:" + std::string(name) + ":" + std::to_string(depth));
    return Status::OK();
  }
  Status Characters(std::string_view text, int depth) override {
    trace.push_back("T:" + std::string(text) + ":" + std::to_string(depth));
    return Status::OK();
  }
  std::vector<std::string> trace;
};

TEST(EventLogTest, RecordAndReplayBasics) {
  auto log = RecordEvents(R"(<a x="1">t<b/></a>)");
  ASSERT_TRUE(log.ok()) << log.status();
  EXPECT_EQ(log->size(), 5u);  // start a, text, start b, end b, end a

  TraceHandler direct, replayed;
  ASSERT_TRUE(ParseString(R"(<a x="1">t<b/></a>)", &direct).ok());
  ASSERT_TRUE(log->Replay(&replayed).ok());
  EXPECT_EQ(direct.trace, replayed.trace);
}

TEST(EventLogTest, ReplayIsRepeatable) {
  auto log = RecordEvents("<a><b>x</b></a>");
  ASSERT_TRUE(log.ok());
  TraceHandler first, second;
  ASSERT_TRUE(log->Replay(&first).ok());
  ASSERT_TRUE(log->Replay(&second).ok());
  EXPECT_EQ(first.trace, second.trace);
}

TEST(EventLogTest, RandomDocumentsRoundTrip) {
  Random rng(31);
  workload::RandomDocOptions options;
  options.max_elements = 60;
  for (int i = 0; i < 25; ++i) {
    std::string doc = workload::GenerateRandomDocument(options, &rng);
    auto log = RecordEvents(doc);
    ASSERT_TRUE(log.ok());
    TraceHandler direct, replayed;
    ASSERT_TRUE(ParseString(doc, &direct).ok());
    ASSERT_TRUE(log->Replay(&replayed).ok());
    EXPECT_EQ(direct.trace, replayed.trace) << doc;
  }
}

TEST(EventLogTest, TwigMOnReplayMatchesTwigMOnParse) {
  Random rng(77);
  workload::RandomDocOptions doc_options;
  doc_options.max_elements = 60;
  workload::RandomQueryOptions query_options;
  for (int i = 0; i < 15; ++i) {
    std::string doc = workload::GenerateRandomDocument(doc_options, &rng);
    std::string query = workload::GenerateRandomQuery(query_options, &rng);

    twigm::VectorResultCollector parsed;
    auto engine = twigm::Engine::Create(query, &parsed);
    ASSERT_TRUE(engine.ok());
    ASSERT_TRUE(engine->RunString(doc).ok());

    auto log = RecordEvents(doc);
    ASSERT_TRUE(log.ok());
    auto compiled = xpath::ParseAndCompile(query);
    ASSERT_TRUE(compiled.ok());
    twigm::VectorResultCollector replayed;
    twigm::TwigMachine machine(&compiled.value(), &replayed);
    ASSERT_TRUE(log->Replay(&machine).ok());

    EXPECT_EQ(parsed.SortedFragments(), replayed.SortedFragments())
        << "query " << query << "\ndoc " << doc;
  }
}

// Replay must preserve the producer's stamps: interned symbols and
// document-order sequence numbers. (A replay that drops them silently
// desynchronizes symbol-aware consumers — the multi-query dispatcher would
// fall back to broadcast-or-miss, and UnionEngine's sequence-keyed dedup
// would double-report.)
class StampTraceHandler : public ContentHandler {
 public:
  Status StartElement(const StartElementEvent& event) override {
    trace.push_back("S:" + std::string(event.name) + ":" +
                    std::to_string(event.symbol) + ":" +
                    std::to_string(event.sequence));
    for (const Attribute& a : event.attributes) {
      trace.push_back("A:" + std::string(a.name) + ":" +
                      std::to_string(a.symbol));
    }
    return Status::OK();
  }
  Status Text(const TextEvent& event) override {
    trace.push_back("T:" + std::string(event.text) + ":" +
                    std::to_string(event.sequence));
    return Status::OK();
  }
  std::vector<std::string> trace;
};

TEST(EventLogTest, SymbolAndSequenceStampsRoundTrip) {
  const std::string doc =
      R"(<news><article id="1" cat="eu"><headline>hi</headline></article>)"
      R"(<other/><article id="2">x</article></news>)";
  SymbolTable symbols;
  // Pre-intern the "query vocabulary"; parser stamping is lookup-only.
  symbols.Intern("article");
  symbols.Intern("headline");
  symbols.Intern("id");
  SaxParserOptions options;
  options.symbols = &symbols;

  StampTraceHandler direct;
  ASSERT_TRUE(ParseString(doc, &direct, options).ok());
  // The direct parse stamped real symbols and sequences (sanity).
  ASSERT_FALSE(direct.trace.empty());
  EXPECT_NE(direct.trace[1].find(":article:"), std::string::npos);

  auto log = RecordEvents(doc, options);
  ASSERT_TRUE(log.ok());
  StampTraceHandler replayed;
  ASSERT_TRUE(log->Replay(&replayed).ok());
  EXPECT_EQ(direct.trace, replayed.trace);
}

TEST(EventLogTest, RandomDocumentStampsRoundTrip) {
  Random rng(93);
  workload::RandomDocOptions options;
  options.max_elements = 60;
  for (int i = 0; i < 10; ++i) {
    std::string doc = workload::GenerateRandomDocument(options, &rng);
    SymbolTable direct_symbols, recorded_symbols;
    SaxParserOptions direct_options, recorded_options;
    direct_options.symbols = &direct_symbols;
    recorded_options.symbols = &recorded_symbols;

    StampTraceHandler direct, replayed;
    ASSERT_TRUE(ParseString(doc, &direct, direct_options).ok());
    auto log = RecordEvents(doc, recorded_options);
    ASSERT_TRUE(log.ok());
    ASSERT_TRUE(log->Replay(&replayed).ok());
    EXPECT_EQ(direct.trace, replayed.trace) << doc;
  }
}

TEST(EventLogTest, UnstampedRecordingsReplayUnstamped) {
  // No table, no producer stamps: replay must deliver kNoSymbol /
  // kNoSequence untouched... except sequences, which the parser always
  // stamps. Attribute and element symbols stay kAbsentSymbol-free.
  auto log = RecordEvents("<a x=\"1\">t</a>");
  ASSERT_TRUE(log.ok());
  StampTraceHandler replayed;
  ASSERT_TRUE(log->Replay(&replayed).ok());
  ASSERT_EQ(replayed.trace.size(), 3u);
  EXPECT_EQ(replayed.trace[0],
            "S:a:" + std::to_string(kNoSymbol) + ":0");
  EXPECT_EQ(replayed.trace[1], "A:x:" + std::to_string(kNoSymbol));
}

TEST(EventLogTest, MemoryAccounting) {
  auto log = RecordEvents("<a><b>hello</b></a>");
  ASSERT_TRUE(log.ok());
  EXPECT_GT(log->memory_bytes(), 0u);
  size_t before = log->memory_bytes();
  log->Clear();
  EXPECT_TRUE(log->empty());
  EXPECT_LT(log->memory_bytes(), before);
}

TEST(EventLogTest, HandlerAbortPropagates) {
  class Abort : public ContentHandler {
    Status Characters(std::string_view, int) override {
      return Status::Unsupported("no text please");
    }
  } abort_handler;
  auto log = RecordEvents("<a>t</a>");
  ASSERT_TRUE(log.ok());
  EXPECT_TRUE(log->Replay(&abort_handler).IsUnsupported());
}

}  // namespace
}  // namespace vitex::xml
