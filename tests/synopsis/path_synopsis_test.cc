#include "synopsis/path_synopsis.h"

#include <gtest/gtest.h>

#include "common/random.h"
#include "twigm/engine.h"
#include "workload/protein_generator.h"
#include "workload/random_generator.h"
#include "xpath/query.h"

namespace vitex::synopsis {
namespace {

PathSynopsis MustBuild(std::string_view doc, int max_depth = 0) {
  auto s = PathSynopsis::Build(doc, max_depth);
  EXPECT_TRUE(s.ok()) << s.status();
  return std::move(s).value();
}

xpath::Query MustCompile(std::string_view q) {
  auto r = xpath::ParseAndCompile(q);
  EXPECT_TRUE(r.ok()) << r.status();
  return std::move(r).value();
}

TEST(PathSynopsisTest, CountsRootedPaths) {
  PathSynopsis s = MustBuild("<a><b/><b><c/></b><d/></a>");
  EXPECT_EQ(s.PathCount("/a"), 1u);
  EXPECT_EQ(s.PathCount("/a/b"), 2u);
  EXPECT_EQ(s.PathCount("/a/b/c"), 1u);
  EXPECT_EQ(s.PathCount("/a/d"), 1u);
  EXPECT_EQ(s.PathCount("/a/zzz"), 0u);
  EXPECT_EQ(s.total_elements(), 5u);
  EXPECT_EQ(s.distinct_paths(), 4u);
  EXPECT_FALSE(s.truncated());
}

TEST(PathSynopsisTest, RowsSortedAndComplete) {
  PathSynopsis s = MustBuild("<a><b/><c/></a>");
  auto rows = s.Rows();
  ASSERT_EQ(rows.size(), 3u);
  EXPECT_EQ(rows[0].first, "/a");
  EXPECT_EQ(rows[1].first, "/a/b");
  EXPECT_EQ(rows[2].first, "/a/c");
}

TEST(PathSynopsisTest, ExactForPathQueries) {
  const char* doc =
      "<lib><book><title/></book><book><title/><title/></book>"
      "<shelf><book><title/></book></shelf></lib>";
  PathSynopsis s = MustBuild(doc);
  struct Case {
    const char* query;
    uint64_t expected;
  } cases[] = {
      {"//book", 3},        {"//title", 4},       {"/lib/book", 2},
      {"/lib/book/title", 3}, {"//shelf//title", 1}, {"//*", 9},
      {"//book/title", 4},  {"/lib//title", 4},    {"//lib", 1},
      {"/book", 0},
  };
  for (const Case& c : cases) {
    EXPECT_EQ(s.EstimateCardinality(MustCompile(c.query)), c.expected)
        << c.query;
  }
}

TEST(PathSynopsisTest, EstimateMatchesEngineOnPathQueries) {
  Random rng(4242);
  workload::RandomDocOptions doc_options;
  doc_options.max_elements = 80;
  workload::RandomQueryOptions query_options;
  query_options.predicate_probability = 0.0;  // path queries only
  query_options.attribute_output_probability = 0.0;
  for (int i = 0; i < 25; ++i) {
    std::string doc = workload::GenerateRandomDocument(doc_options, &rng);
    std::string query = workload::GenerateRandomQuery(query_options, &rng);
    if (query.find("text()") != std::string::npos) continue;
    PathSynopsis s = MustBuild(doc);
    twigm::CountingResultHandler results;
    auto engine = twigm::Engine::Create(query, &results);
    ASSERT_TRUE(engine.ok());
    ASSERT_TRUE(engine->RunString(doc).ok());
    EXPECT_EQ(s.EstimateCardinality(MustCompile(query)), results.count())
        << query << "\ndoc: " << doc;
  }
}

TEST(PathSynopsisTest, UpperBoundWithPredicates) {
  Random rng(777);
  workload::RandomDocOptions doc_options;
  doc_options.max_elements = 80;
  workload::RandomQueryOptions query_options;
  query_options.attribute_output_probability = 0.0;
  for (int i = 0; i < 25; ++i) {
    std::string doc = workload::GenerateRandomDocument(doc_options, &rng);
    std::string query = workload::GenerateRandomQuery(query_options, &rng);
    if (query.find("text()") != std::string::npos) continue;
    PathSynopsis s = MustBuild(doc);
    twigm::CountingResultHandler results;
    auto engine = twigm::Engine::Create(query, &results);
    ASSERT_TRUE(engine.ok());
    ASSERT_TRUE(engine->RunString(doc).ok());
    EXPECT_GE(s.EstimateCardinality(MustCompile(query)), results.count())
        << query << "\ndoc: " << doc;
  }
}

TEST(PathSynopsisTest, DepthCapTruncatesButBounds) {
  std::string doc = "<a><b><c><d><e/></d></c></b></a>";
  PathSynopsis capped = MustBuild(doc, /*max_depth=*/2);
  EXPECT_TRUE(capped.truncated());
  EXPECT_EQ(capped.total_elements(), 5u);
  // Counts within the cap are exact.
  EXPECT_EQ(capped.PathCount("/a"), 1u);
  EXPECT_EQ(capped.PathCount("/a/b"), 1u);
  // Deeper elements land in the truncated bucket, and estimates remain
  // upper bounds.
  auto q = MustCompile("//e");
  EXPECT_GE(capped.EstimateCardinality(q), 1u);
}

TEST(PathSynopsisTest, SelectivityFraction) {
  PathSynopsis s = MustBuild("<a><b/><b/><c/></a>");
  EXPECT_DOUBLE_EQ(s.EstimateSelectivity(MustCompile("//b")), 0.5);
  EXPECT_DOUBLE_EQ(s.EstimateSelectivity(MustCompile("//*")), 1.0);
}

TEST(PathSynopsisTest, AttributeOutputPricesOwnerChain) {
  PathSynopsis s = MustBuild("<r><a x=\"1\"/><a/><b/></r>");
  // //a/@x estimates as the count of a elements (upper bound: 2 >= 1).
  EXPECT_EQ(s.EstimateCardinality(MustCompile("//a/@x")), 2u);
}

TEST(PathSynopsisTest, ProteinWorkloadShape) {
  workload::ProteinOptions options;
  options.entries = 200;
  options.reference_probability = 1.0;
  auto doc = workload::GenerateProteinString(options);
  ASSERT_TRUE(doc.ok());
  PathSynopsis s = MustBuild(doc.value());
  EXPECT_EQ(s.PathCount("/ProteinDatabase"), 1u);
  EXPECT_EQ(s.PathCount("/ProteinDatabase/ProteinEntry"), 200u);
  EXPECT_EQ(s.EstimateCardinality(MustCompile("//ProteinEntry")), 200u);
  // The synopsis is tiny relative to the data (schema-sized, not data-sized).
  EXPECT_LT(s.memory_bytes(), doc->size() / 50);
}

TEST(PathSynopsisTest, ExplainListsStepPrefixes) {
  PathSynopsis s = MustBuild("<a><b><c/></b><b/></a>");
  std::string explain = s.ExplainEstimate(MustCompile("//a//b[c]"));
  EXPECT_NE(explain.find("step 1: //a  ~ 1 elements"), std::string::npos)
      << explain;
  EXPECT_NE(explain.find("step 2: //a//b  ~ 2 elements"), std::string::npos)
      << explain;
  EXPECT_NE(explain.find("upper bound"), std::string::npos) << explain;
}

TEST(PathSynopsisTest, ExplainWithoutPredicatesHasNoCaveat) {
  PathSynopsis s = MustBuild("<a><b/></a>");
  std::string explain = s.ExplainEstimate(MustCompile("//b"));
  EXPECT_EQ(explain.find("upper bound"), std::string::npos) << explain;
}

TEST(PathSynopsisTest, EmptyishDocument) {
  PathSynopsis s = MustBuild("<only/>");
  EXPECT_EQ(s.total_elements(), 1u);
  EXPECT_EQ(s.EstimateCardinality(MustCompile("//nothing")), 0u);
  EXPECT_DOUBLE_EQ(s.EstimateSelectivity(MustCompile("//only")), 1.0);
}

}  // namespace
}  // namespace vitex::synopsis
